// Integration tests for SudafSession: the three execution modes must agree,
// the cache must serve repeat and cross-UDAF queries without touching base
// data, and sign separation must hold on mixed-sign inputs.

#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "sketch/moment_sketch.h"
#include "sudaf/session.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

using testing_util::ExpectClose;

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(2024);
    std::vector<int64_t> g;
    std::vector<double> x;
    std::vector<double> y;
    for (int i = 0; i < 600; ++i) {
      g.push_back(static_cast<int64_t>(rng.NextBelow(5)));
      double xv = rng.NextDoubleIn(0.5, 9.5);
      x.push_back(xv);
      y.push_back(2.0 * xv + rng.NextDoubleIn(-0.5, 0.5));
    }
    catalog_.PutTable("t", testing_util::MakeXyTable(g, x, y));
    session_ = std::make_unique<SudafSession>(&catalog_);
  }

  std::unique_ptr<Table> Run(const std::string& sql, ExecMode mode) {
    auto result = session_->Execute(sql, mode);
    SUDAF_CHECK_MSG(result.ok(), result.status().ToString());
    last_run_stats_ = result->stats;
    return std::move(result->table);
  }

  // Stats of the last Run() query, captured from its QueryResult.
  const ExecStats& stats() const { return last_run_stats_; }

  void ExpectTablesClose(const Table& a, const Table& b, double tol = 1e-9) {
    ASSERT_EQ(a.num_rows(), b.num_rows());
    ASSERT_EQ(a.num_columns(), b.num_columns());
    for (int c = 0; c < a.num_columns(); ++c) {
      for (int64_t r = 0; r < a.num_rows(); ++r) {
        if (a.column(c).type() == DataType::kString) {
          EXPECT_EQ(a.column(c).GetString(r), b.column(c).GetString(r));
        } else {
          ExpectClose(a.column(c).GetNumeric(r), b.column(c).GetNumeric(r),
                      tol);
        }
      }
    }
  }

  Catalog catalog_;
  std::unique_ptr<SudafSession> session_;
  ExecStats last_run_stats_;
};

// Every aggregate of the paper's workload: the engine baseline, the SUDAF
// rewrite and the SUDAF cache-backed execution must produce identical
// results.
class ModeAgreementTest : public SessionTest,
                          public ::testing::WithParamInterface<const char*> {
};

TEST_P(ModeAgreementTest, AllThreeModesAgree) {
  std::string sql = std::string("SELECT g, ") + GetParam() +
                    "(x) FROM t GROUP BY g ORDER BY g";
  auto engine = Run(sql, ExecMode::kEngine);
  auto noshare = Run(sql, ExecMode::kSudafNoShare);
  // Run share twice: cold (computes) and warm (served from cache).
  auto share_cold = Run(sql, ExecMode::kSudafShare);
  auto share_warm = Run(sql, ExecMode::kSudafShare);
  ExpectTablesClose(*engine, *noshare, 1e-7);
  ExpectTablesClose(*engine, *share_cold, 1e-7);
  ExpectTablesClose(*engine, *share_warm, 1e-7);
  EXPECT_FALSE(stats().scanned_base_data);
}

INSTANTIATE_TEST_SUITE_P(PaperAggregates, ModeAgreementTest,
                         ::testing::Values("sum", "count", "avg", "min",
                                           "max", "var", "stddev", "qm",
                                           "cm", "apm", "hm", "gm",
                                           "skewness", "kurtosis",
                                           "logsumexp"));

TEST_F(SessionTest, BivariateUdafsAgreeAcrossModes) {
  for (const char* agg : {"theta1", "theta0", "covar", "corr"}) {
    std::string sql = std::string("SELECT g, ") + agg +
                      "(x, y) FROM t GROUP BY g ORDER BY g";
    auto engine_result = session_->Execute(sql, ExecMode::kEngine);
    auto sudaf_result = session_->Execute(sql, ExecMode::kSudafNoShare);
    if (std::string(agg) == "theta0") {
      // theta0 has no hardcoded counterpart; compare rewrite vs. share.
      ASSERT_TRUE(sudaf_result.ok()) << sudaf_result.status().ToString();
      continue;
    }
    ASSERT_TRUE(engine_result.ok()) << engine_result.status().ToString();
    ASSERT_TRUE(sudaf_result.ok()) << sudaf_result.status().ToString();
    ExpectTablesClose(**engine_result, **sudaf_result, 1e-7);
  }
}

TEST_F(SessionTest, Q2AfterQ1ReusesThreeStates) {
  // The motivating example: after Q1 (theta1 + avgs), Q2's qm + stddev find
  // all three of their states in the cache and never scan base data.
  Run("SELECT g, avg(x), avg(y), theta1(x, y) FROM t GROUP BY g",
      ExecMode::kSudafShare);
  EXPECT_EQ(stats().states_computed, 5);

  Run("SELECT g, qm(x), stddev(x) FROM t GROUP BY g", ExecMode::kSudafShare);
  const ExecStats& stats = this->stats();
  EXPECT_EQ(stats.num_states, 3);
  EXPECT_EQ(stats.states_from_cache, 3);
  EXPECT_EQ(stats.states_computed, 0);
  EXPECT_FALSE(stats.scanned_base_data);
}

TEST_F(SessionTest, CrossShapeSharing) {
  // Σ4x² is served from a cached Σx² (different syntactic shape).
  Run("SELECT g, sum(x^2) FROM t GROUP BY g", ExecMode::kSudafShare);
  Run("SELECT g, sum(4*x^2) FROM t GROUP BY g", ExecMode::kSudafShare);
  EXPECT_EQ(stats().states_from_cache, 1);
  EXPECT_FALSE(stats().scanned_base_data);
}

TEST_F(SessionTest, GeometricMeanSharesWithProducts) {
  // Π x and Σ ln x are one sharing class: after gm, a prod(x) query is
  // served entirely from the cache.
  Run("SELECT g, gm(x) FROM t GROUP BY g", ExecMode::kSudafShare);
  auto prod = Run("SELECT g, prod(x) FROM t GROUP BY g ORDER BY g",
                  ExecMode::kSudafShare);
  EXPECT_EQ(stats().states_from_cache, 1);
  EXPECT_FALSE(stats().scanned_base_data);
  auto engine = Run("SELECT g, prod(x) FROM t GROUP BY g ORDER BY g",
                    ExecMode::kEngine);
  // Values can be astronomically large; compare on the log scale.
  for (int64_t r = 0; r < prod->num_rows(); ++r) {
    ExpectClose(std::log(engine->column(1).GetFloat64(r)),
                std::log(prod->column(1).GetFloat64(r)), 1e-7);
  }
}

TEST_F(SessionTest, LogClassCrossSharing) {
  Run("SELECT g, exp(sum(ln(x))/count()) FROM t GROUP BY g",
      ExecMode::kSudafShare);
  int computed_first = stats().states_computed;
  EXPECT_GT(computed_first, 0);
  // Σ ln(x²) = 2Σln|x| — same class, cache hit.
  Run("SELECT g, sum(ln(x^2)) FROM t GROUP BY g", ExecMode::kSudafShare);
  EXPECT_EQ(stats().states_from_cache, 1);
}

TEST_F(SessionTest, SignSeparationOnMixedSignData) {
  // Products over mixed-sign data reconstruct correctly from the
  // sign-separated log channels (Section 5.3).
  std::vector<int64_t> g = {0, 0, 0, 1, 1};
  std::vector<double> x = {-2.0, 3.0, -1.5, 2.0, -4.0};
  catalog_.PutTable("m", testing_util::MakeXyTable(g, x, x));
  std::string sql = "SELECT g, prod(x) FROM m GROUP BY g ORDER BY g";
  auto share = Run(sql, ExecMode::kSudafShare);
  ASSERT_EQ(share->num_rows(), 2);
  ExpectClose(9.0, share->column(1).GetFloat64(0));    // (-2)(3)(-1.5)
  ExpectClose(-8.0, share->column(1).GetFloat64(1));   // (2)(-4)
  // Σ ln(x²) over the same data, from the same cached channels.
  auto ln_sq = Run("SELECT g, sum(ln(x^2)) FROM m GROUP BY g ORDER BY g",
                   ExecMode::kSudafShare);
  double expected = 2.0 * (std::log(2.0) + std::log(3.0) + std::log(1.5));
  ExpectClose(expected, ln_sq->column(1).GetFloat64(0), 1e-9);
  EXPECT_EQ(stats().states_from_cache, 1);
}

TEST_F(SessionTest, UngroupedQueriesReturnOneRow) {
  auto result = Run("SELECT qm(x), count(x) FROM t", ExecMode::kSudafShare);
  ASSERT_EQ(result->num_rows(), 1);
  auto warm = Run("SELECT qm(x) FROM t", ExecMode::kSudafShare);
  ASSERT_EQ(warm->num_rows(), 1);
  EXPECT_FALSE(stats().scanned_base_data);
}

TEST_F(SessionTest, DifferentDataDimensionsDoNotShare) {
  // A different WHERE clause is a different data signature — no reuse (the
  // data dimension is out of scope, Section 2).
  Run("SELECT g, qm(x) FROM t GROUP BY g", ExecMode::kSudafShare);
  Run("SELECT g, qm(x) FROM t WHERE x > 5 GROUP BY g", ExecMode::kSudafShare);
  EXPECT_EQ(stats().states_from_cache, 0);
  EXPECT_TRUE(stats().scanned_base_data);
}

TEST_F(SessionTest, PartialHitComputesOnlyMissingStates) {
  Run("SELECT g, avg(x) FROM t GROUP BY g", ExecMode::kSudafShare);
  Run("SELECT g, var(x) FROM t GROUP BY g", ExecMode::kSudafShare);
  const ExecStats& stats = this->stats();
  EXPECT_EQ(stats.num_states, 3);         // Σx², Σx, count
  EXPECT_EQ(stats.states_from_cache, 2);  // Σx and count from avg
  EXPECT_EQ(stats.states_computed, 1);    // Σx² fresh
}

TEST_F(SessionTest, UserDefinedUdafViaExpression) {
  ASSERT_OK(session_->library().Define("contraharmonic", {"x"},
                                       "sum(x^2)/sum(x)"));
  auto result = Run("SELECT g, contraharmonic(x) FROM t GROUP BY g ORDER BY g",
                    ExecMode::kSudafShare);
  EXPECT_EQ(result->num_rows(), 5);
  // Its states come from the shared pool on a second run.
  Run("SELECT g, contraharmonic(x) FROM t GROUP BY g", ExecMode::kSudafShare);
  EXPECT_EQ(stats().states_from_cache, 2);
}

TEST_F(SessionTest, MomentSketchPrefetchServesAS2StyleQueries) {
  // Prefetch the moments sketch; qm/var/gm then hit the cache, hm misses
  // (Σ x^-1 is not in the sketch) — exactly the paper's AS2 observation.
  std::string prefix = "SELECT g, ";
  std::string suffix = " FROM t GROUP BY g";
  std::string sketch_items;
  for (const std::string& e : MomentSketchStateExprs("x", 6)) {
    if (!sketch_items.empty()) sketch_items += ", ";
    sketch_items += e;
  }
  ASSERT_OK(session_->Prefetch(prefix + sketch_items + suffix));

  Run(prefix + "qm(x)" + suffix, ExecMode::kSudafShare);
  EXPECT_EQ(stats().states_computed, 0);
  Run(prefix + "var(x), min(x), max(x)" + suffix, ExecMode::kSudafShare);
  EXPECT_EQ(stats().states_computed, 0);
  Run(prefix + "gm(x)" + suffix, ExecMode::kSudafShare);
  EXPECT_EQ(stats().states_computed, 0);
  Run(prefix + "hm(x)" + suffix, ExecMode::kSudafShare);
  EXPECT_EQ(stats().states_computed, 1);
}

TEST_F(SessionTest, NativeQuantileUdafRuns) {
  ASSERT_OK(session_->library().DefineNative(
      MakeApproxQuantileUdaf("approx_median", 0.5, 8)));
  auto result =
      Run("SELECT approx_median(x) FROM t", ExecMode::kSudafNoShare);
  ASSERT_EQ(result->num_rows(), 1);
  double median = result->column(0).GetFloat64(0);
  // x is uniform on [0.5, 9.5]: the median is near 5.
  EXPECT_GT(median, 3.5);
  EXPECT_LT(median, 6.5);
}

TEST_F(SessionTest, ExplainRewriteProducesRq1Form) {
  ASSERT_OK_AND_ASSIGN(
      std::string explain,
      session_->ExplainRewrite("SELECT g, qm(x) FROM t GROUP BY g"));
  EXPECT_NE(explain.find("sum(x^2)"), std::string::npos);
  EXPECT_NE(explain.find("count()"), std::string::npos);
}

TEST_F(SessionTest, PartitionedSparkModeAgrees) {
  ExecOptions spark;
  spark.partitioned = true;
  spark.num_partitions = 4;
  SudafSession partitioned(&catalog_, SessionOptions{}.set_exec(spark));
  std::string sql = "SELECT g, qm(x), gm(x) FROM t GROUP BY g ORDER BY g";
  auto serial = Run(sql, ExecMode::kSudafNoShare);
  auto result = partitioned.Execute(sql, ExecMode::kSudafNoShare);
  ASSERT_TRUE(result.ok());
  ExpectTablesClose(*serial, **result, 1e-8);
}

TEST_F(SessionTest, StatsAreRecorded) {
  Run("SELECT g, qm(x) FROM t GROUP BY g", ExecMode::kSudafShare);
  const ExecStats& stats = this->stats();
  EXPECT_GT(stats.total_ms, 0.0);
  EXPECT_GE(stats.rewrite_ms, 0.0);
  EXPECT_EQ(stats.num_states, 2);
  EXPECT_GT(session_->cache().num_entries(), 0);
}

TEST_F(SessionTest, ErrorsPropagate) {
  EXPECT_FALSE(session_->Execute("SELECT qm(zzz) FROM t",
                                 ExecMode::kSudafShare)
                   .ok());
  EXPECT_FALSE(
      session_->Execute("not sql at all", ExecMode::kSudafShare).ok());
  EXPECT_FALSE(session_->Execute("SELECT nosuchudaf(x) FROM t",
                                 ExecMode::kSudafNoShare)
                   .ok());
}

}  // namespace
}  // namespace sudaf

// Tests for engine/: planning, filtering, hash joins, grouping and
// engine-native execution.

#include <cmath>

#include "engine/executor.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

using testing_util::ExpectClose;

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // fact(fk INT64, v FLOAT64), dim(dk INT64, tag STRING, band INT64)
    Schema fact_schema;
    ASSERT_OK(fact_schema.AddField({"fk", DataType::kInt64}));
    ASSERT_OK(fact_schema.AddField({"v", DataType::kFloat64}));
    auto fact = std::make_unique<Table>(std::move(fact_schema));
    // Rows: fk cycles 1..3, v = 1..9.
    for (int i = 0; i < 9; ++i) {
      fact->column(0).AppendInt64(1 + i % 3);
      fact->column(1).AppendFloat64(i + 1.0);
    }
    fact->FinishBulkAppend();

    Schema dim_schema;
    ASSERT_OK(dim_schema.AddField({"dk", DataType::kInt64}));
    ASSERT_OK(dim_schema.AddField({"tag", DataType::kString}));
    ASSERT_OK(dim_schema.AddField({"band", DataType::kInt64}));
    auto dim = std::make_unique<Table>(std::move(dim_schema));
    dim->AppendRow({Value(int64_t{1}), Value(std::string("a")),
                    Value(int64_t{10})});
    dim->AppendRow({Value(int64_t{2}), Value(std::string("b")),
                    Value(int64_t{10})});
    dim->AppendRow({Value(int64_t{3}), Value(std::string("a")),
                    Value(int64_t{20})});
    dim->FinishBulkAppend();

    catalog_.PutTable("fact", std::move(fact));
    catalog_.PutTable("dim", std::move(dim));
    RegisterHardcodedUdafs(&registry_);
    executor_ = std::make_unique<Executor>(&catalog_, &registry_);
  }

  // Runs and returns the single double of a one-row one-column result.
  double RunScalar(const std::string& sql) {
    auto stmt = ParseSelect(sql);
    SUDAF_CHECK_MSG(stmt.ok(), stmt.status().ToString());
    auto result = executor_->Execute(**stmt);
    SUDAF_CHECK_MSG(result.ok(), result.status().ToString());
    SUDAF_CHECK((*result)->num_rows() == 1);
    return (*result)->column(0).GetNumeric(0);
  }

  Catalog catalog_;
  UdafRegistry registry_;
  std::unique_ptr<Executor> executor_;
};

TEST_F(EngineTest, UngroupedSum) {
  EXPECT_DOUBLE_EQ(RunScalar("SELECT sum(v) FROM fact"), 45.0);
}

TEST_F(EngineTest, FilterPushdown) {
  EXPECT_DOUBLE_EQ(RunScalar("SELECT count(*) FROM fact WHERE v > 5"), 4.0);
}

TEST_F(EngineTest, ExpressionInsideAggregate) {
  // Σ (v² + 1) over v = 1..9.
  double expected = 0.0;
  for (int i = 1; i <= 9; ++i) expected += i * i + 1.0;
  EXPECT_DOUBLE_EQ(RunScalar("SELECT sum(v^2 + 1) FROM fact"), expected);
}

TEST_F(EngineTest, GroupByIntKey) {
  ASSERT_OK_AND_ASSIGN(auto stmt,
                       ParseSelect("SELECT fk, sum(v) FROM fact GROUP BY fk "
                                   "ORDER BY fk"));
  ASSERT_OK_AND_ASSIGN(auto result, executor_->Execute(*stmt));
  ASSERT_EQ(result->num_rows(), 3);
  // fk=1 -> v ∈ {1,4,7}; fk=2 -> {2,5,8}; fk=3 -> {3,6,9}.
  EXPECT_DOUBLE_EQ(result->column(1).GetFloat64(0), 12.0);
  EXPECT_DOUBLE_EQ(result->column(1).GetFloat64(1), 15.0);
  EXPECT_DOUBLE_EQ(result->column(1).GetFloat64(2), 18.0);
}

TEST_F(EngineTest, JoinWithStringFilterAndGroupByString) {
  ASSERT_OK_AND_ASSIGN(
      auto stmt,
      ParseSelect("SELECT tag, sum(v) FROM fact, dim "
                  "WHERE fk = dk GROUP BY tag ORDER BY tag"));
  ASSERT_OK_AND_ASSIGN(auto result, executor_->Execute(*stmt));
  ASSERT_EQ(result->num_rows(), 2);
  EXPECT_EQ(result->column(0).GetString(0), "a");
  EXPECT_DOUBLE_EQ(result->column(1).GetFloat64(0), 12.0 + 18.0);  // fk 1,3
  EXPECT_DOUBLE_EQ(result->column(1).GetFloat64(1), 15.0);          // fk 2
}

TEST_F(EngineTest, JoinPlusDimensionPredicate) {
  EXPECT_DOUBLE_EQ(
      RunScalar("SELECT sum(v) FROM fact, dim WHERE fk = dk AND tag = 'a'"),
      30.0);
}

TEST_F(EngineTest, OrPredicateOnSingleTable) {
  EXPECT_DOUBLE_EQ(
      RunScalar(
          "SELECT count(*) FROM fact, dim WHERE fk = dk AND "
          "(tag = 'b' or band = 20)"),
      6.0);  // fk=2 (3 rows) + fk=3 (3 rows)
}

TEST_F(EngineTest, CompositeGroupKeys) {
  ASSERT_OK_AND_ASSIGN(
      auto stmt,
      ParseSelect("SELECT tag, band, count(*) FROM fact, dim WHERE fk = dk "
                  "GROUP BY tag, band ORDER BY tag, band"));
  ASSERT_OK_AND_ASSIGN(auto result, executor_->Execute(*stmt));
  ASSERT_EQ(result->num_rows(), 3);  // (a,10), (a,20), (b,10)
  EXPECT_EQ(result->column(0).GetString(0), "a");
  EXPECT_EQ(result->column(1).GetInt64(0), 10);
  EXPECT_DOUBLE_EQ(result->column(2).GetFloat64(0), 3.0);
}

TEST_F(EngineTest, OrderByDescAndLimit) {
  ASSERT_OK_AND_ASSIGN(
      auto stmt, ParseSelect("SELECT fk, max(v) m FROM fact GROUP BY fk "
                             "ORDER BY m DESC LIMIT 2"));
  ASSERT_OK_AND_ASSIGN(auto result, executor_->Execute(*stmt));
  ASSERT_EQ(result->num_rows(), 2);
  EXPECT_DOUBLE_EQ(result->column(1).GetFloat64(0), 9.0);
  EXPECT_DOUBLE_EQ(result->column(1).GetFloat64(1), 8.0);
}

TEST_F(EngineTest, NativeAvgVarStddev) {
  // v = 1..9: mean 5, population variance 60/9.
  ExpectClose(5.0, RunScalar("SELECT avg(v) FROM fact"));
  ExpectClose(60.0 / 9.0, RunScalar("SELECT var(v) FROM fact"));
  ExpectClose(std::sqrt(60.0 / 9.0), RunScalar("SELECT stddev(v) FROM fact"));
}

TEST_F(EngineTest, HardcodedUdafViaIume) {
  double expected = 0.0;
  for (int i = 1; i <= 9; ++i) expected += i * i;
  ExpectClose(std::sqrt(expected / 9.0), RunScalar("SELECT qm(v) FROM fact"));
}

TEST_F(EngineTest, UdafWithTwoColumns) {
  // theta1(v, v) = 1 exactly.
  ExpectClose(1.0, RunScalar("SELECT theta1(v, v) FROM fact"));
}

TEST_F(EngineTest, PartitionedExecutionMatchesSerial) {
  ASSERT_OK_AND_ASSIGN(
      auto stmt, ParseSelect("SELECT fk, qm(v) FROM fact GROUP BY fk "
                             "ORDER BY fk"));
  ASSERT_OK_AND_ASSIGN(auto serial, executor_->Execute(*stmt));
  ExecOptions opts;
  opts.partitioned = true;
  opts.num_partitions = 3;
  ASSERT_OK_AND_ASSIGN(auto partitioned, executor_->Execute(*stmt, opts));
  ASSERT_EQ(serial->num_rows(), partitioned->num_rows());
  for (int64_t r = 0; r < serial->num_rows(); ++r) {
    ExpectClose(serial->column(1).GetFloat64(r),
                partitioned->column(1).GetFloat64(r));
  }
}

TEST_F(EngineTest, SelectColumnNotInGroupByFails) {
  ASSERT_OK_AND_ASSIGN(auto stmt,
                       ParseSelect("SELECT v, sum(v) FROM fact GROUP BY fk"));
  EXPECT_FALSE(executor_->Execute(*stmt).ok());
}

TEST_F(EngineTest, UnknownColumnFails) {
  ASSERT_OK_AND_ASSIGN(auto stmt, ParseSelect("SELECT sum(zzz) FROM fact"));
  EXPECT_FALSE(executor_->Execute(*stmt).ok());
}

TEST_F(EngineTest, UnknownTableFails) {
  ASSERT_OK_AND_ASSIGN(auto stmt, ParseSelect("SELECT sum(v) FROM nope"));
  EXPECT_FALSE(executor_->Execute(*stmt).ok());
}

TEST_F(EngineTest, DisconnectedJoinFails) {
  ASSERT_OK_AND_ASSIGN(auto stmt,
                       ParseSelect("SELECT sum(v) FROM fact, dim"));
  EXPECT_FALSE(executor_->Execute(*stmt).ok());
}

TEST_F(EngineTest, AmbiguousColumnFails) {
  Schema other;
  ASSERT_OK(other.AddField({"v", DataType::kFloat64}));
  ASSERT_OK(other.AddField({"fk2", DataType::kInt64}));
  auto table = std::make_unique<Table>(std::move(other));
  table->AppendRow({Value(1.0), Value(int64_t{1})});
  catalog_.PutTable("other", std::move(table));
  ASSERT_OK_AND_ASSIGN(
      auto stmt, ParseSelect("SELECT sum(v) FROM fact, other WHERE fk = fk2"));
  EXPECT_FALSE(executor_->Execute(*stmt).ok());
}

TEST_F(EngineTest, EmptyJoinResultYieldsNoGroups) {
  ASSERT_OK_AND_ASSIGN(
      auto stmt,
      ParseSelect("SELECT fk, sum(v) FROM fact, dim WHERE fk = dk AND "
                  "tag = 'zzz' GROUP BY fk"));
  ASSERT_OK_AND_ASSIGN(auto result, executor_->Execute(*stmt));
  EXPECT_EQ(result->num_rows(), 0);
}

TEST_F(EngineTest, GatherRowsReordersAll) {
  ASSERT_OK_AND_ASSIGN(Table * dim, catalog_.GetTable("dim"));
  auto picked = GatherRows(*dim, {2, 0});
  ASSERT_EQ(picked->num_rows(), 2);
  EXPECT_EQ(picked->column(1).GetString(0), "a");
  EXPECT_EQ(picked->column(0).GetInt64(0), 3);
  EXPECT_EQ(picked->column(0).GetInt64(1), 1);
}

}  // namespace
}  // namespace sudaf

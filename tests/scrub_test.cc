// Tests for the integrity scrubber (sudaf/scrubber.h): resident shadow-CRC
// quarantine of in-memory bit rot, on-disk corruption detection and
// snapshot republish, the background thread, the sudaf.scrub.* metrics
// surface, and the orphaned-tmp sweep at persistence attach.

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/file_io.h"
#include "gtest/gtest.h"
#include "storage/catalog.h"
#include "sudaf/cache.h"
#include "sudaf/scrubber.h"
#include "sudaf/session.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

// Flips one mantissa bit of a double in place — silent in-memory rot.
void FlipBit(double* v) {
  uint64_t bits;
  std::memcpy(&bits, v, sizeof(bits));
  bits ^= 1;
  std::memcpy(v, &bits, sizeof(bits));
}

class ScrubTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/sudaf_scrub";
    std::filesystem::remove_all(dir_);
    std::vector<int64_t> g(80);
    std::vector<double> x(80);
    for (int64_t i = 0; i < 80; ++i) {
      g[i] = i % 4;
      x[i] = static_cast<double>((i * 13) % 29) + 0.5;
    }
    catalog_.PutTable("t", testing_util::MakeXyTable(g, x, x));
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  // Populates the session's cache with stamped entries via a share-mode
  // query.
  void Warm(SudafSession* session) {
    auto result = session->Execute("SELECT g, var(x), sum(x) FROM t GROUP BY g",
                                   ExecMode::kSudafShare);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_GT(session->cache().num_entries(), 0);
  }

  Catalog catalog_;
  std::string dir_;
};

// ---------------------------------------------------------------------------
// StateCache::ScrubResident — the mechanism
// ---------------------------------------------------------------------------

TEST(ScrubResidentTest, QuarantinesRottedAndPoisonedStampedEntries) {
  StateCache cache;
  auto keys = testing_util::MakeXyTable({0, 1}, {0, 0}, {0, 0});
  StateCache::GroupSetPtr set = cache.GetOrCreate("T:t,;W:;G:g,", *keys, 2, CatalogEpochs{},
                        /*covered_rows=*/-1);
  cache.InsertEntry(set.get(), "healthy", {{1.0, 2.0}, {}});
  cache.InsertEntry(set.get(), "rotted", {{3.0, 4.0}, {1, -1}});
  ASSERT_NE(set->entries.at("rotted").shadow_crc, 0u);  // stamped on insert

  // Clean pass: everything verifies.
  StateCache::ScrubResult clean = cache.ScrubResident();
  EXPECT_EQ(clean.entries_checked, 2);
  EXPECT_EQ(clean.entries_quarantined, 0);

  // Rot one bit behind the cache's back; the next pass erases the entry.
  FlipBit(&set->entries.at("rotted").main[1]);
  StateCache::ScrubResult result = cache.ScrubResident();
  EXPECT_EQ(result.entries_quarantined, 1);
  EXPECT_EQ(set->entries.count("rotted"), 0u);
  EXPECT_EQ(set->entries.count("healthy"), 1u);
  EXPECT_EQ(cache.counters().scrub_quarantines, 1);

  // Poison is quarantined too, even when its CRC is consistent.
  StateCache::Entry poison{{std::nan(""), 1.0}, {}};
  set->entries["poison"] = poison;
  set->entries.at("poison").shadow_crc = EntryShadowCrc(poison);
  result = cache.ScrubResident();
  EXPECT_EQ(result.entries_quarantined, 1);
  EXPECT_EQ(cache.counters().scrub_quarantines, 2);
}

TEST(ScrubResidentTest, UnstampedEntriesAreSkippedNotQuarantined) {
  StateCache cache;
  auto keys = testing_util::MakeXyTable({0}, {0}, {0});
  StateCache::GroupSetPtr set = cache.GetOrCreate("T:t,;W:;G:g,", *keys, 1, CatalogEpochs{},
                        /*covered_rows=*/-1);
  // Planted directly (shadow_crc == 0), the way tests and historic code
  // paths do: the scrub must not misread "unstamped" as "corrupt".
  set->entries["planted"] = StateCache::Entry{{42.0}, {}};
  StateCache::ScrubResult result = cache.ScrubResident();
  EXPECT_EQ(result.entries_quarantined, 0);
  EXPECT_EQ(set->entries.count("planted"), 1u);
}

// ---------------------------------------------------------------------------
// IntegrityScrubber end-to-end
// ---------------------------------------------------------------------------

TEST_F(ScrubTest, ResidentBitFlipIsQuarantinedAndCounted) {
  SudafSession session(&catalog_);
  Warm(&session);

  // Flip one bit in one resident entry's main channel.
  ASSERT_FALSE(session.cache().sets().empty());
  StateCache::GroupSetPtr set = session.cache().sets().begin()->second;
  ASSERT_FALSE(set->entries.empty());
  FlipBit(&set->entries.begin()->second.main[0]);

  IntegrityScrubber scrubber(&session);
  ScrubReport report = scrubber.RunOnce();
  EXPECT_GT(report.resident.entries_checked, 0);
  EXPECT_EQ(report.resident.entries_quarantined, 1);
  EXPECT_FALSE(report.store_attached);  // no persistence in this test
  EXPECT_TRUE(report.found_damage());

  // The damage is visible on the metrics surface.
  MetricsRegistry& m = session.metrics();
  EXPECT_EQ(m.counter("sudaf.scrub.passes")->value(), 1);
  EXPECT_EQ(m.counter("sudaf.scrub.entries_quarantined")->value(), 1);
  EXPECT_GT(m.counter("sudaf.scrub.entries_checked")->value(), 0);
  // And in the pass trace.
  TraceHandle trace = scrubber.last_trace();
  ASSERT_NE(trace, nullptr);
  EXPECT_GT(trace->EventCount("cache.scrub_quarantine"), 0);

  // The quarantined entry can never be served again; the next query
  // recomputes it and the answers match a cold session bit-for-bit.
  auto after = session.Execute("SELECT g, var(x), sum(x) FROM t GROUP BY g",
                               ExecMode::kSudafShare);
  ASSERT_TRUE(after.ok());
  SudafSession cold(&catalog_);
  auto want = cold.Execute("SELECT g, var(x), sum(x) FROM t GROUP BY g",
                           ExecMode::kSudafShare);
  ASSERT_TRUE(want.ok());
  for (int64_t r = 0; r < (*want)->num_rows(); ++r) {
    EXPECT_EQ((*after)->column(1).GetFloat64(r),
              (*want)->column(1).GetFloat64(r));
  }
}

TEST_F(ScrubTest, DiskBitFlipIsDetectedAndRepublished) {
  SudafSession session(&catalog_);
  ASSERT_OK(session.EnableCachePersistence(dir_));
  Warm(&session);
  // Compact so the snapshot holds the records, then rot one payload byte.
  ASSERT_OK(session.cache_persistence()->Save());
  std::string snap = session.cache_persistence()->snapshot_path();
  ASSERT_OK_AND_ASSIGN(std::string file, ReadFileToString(snap));
  ASSERT_GT(file.size(), 40u);
  file[file.size() / 2] ^= 0x10;  // payload byte, well past the header
  ASSERT_OK(WriteFileAtomic(snap, file));

  IntegrityScrubber scrubber(&session);
  ScrubReport report = scrubber.RunOnce();
  EXPECT_TRUE(report.store_attached);
  EXPECT_GE(report.disk.corrupt_records, 1);
  EXPECT_TRUE(report.republished);  // repaired from the clean resident cache
  EXPECT_TRUE(report.error.ok());

  MetricsRegistry& m = session.metrics();
  EXPECT_GE(m.counter("sudaf.scrub.disk_corrupt_records")->value(), 1);
  EXPECT_EQ(m.counter("sudaf.scrub.republishes")->value(), 1);

  // The republished store verifies clean and still recovers everything.
  ScrubReport second = scrubber.RunOnce();
  EXPECT_EQ(second.disk.corrupt_records, 0);
  EXPECT_GT(second.disk.records_checked, 0);
  EXPECT_FALSE(second.found_damage());

  session.DisableCachePersistence();
  SudafSession reopened(&catalog_);
  ASSERT_OK(reopened.EnableCachePersistence(dir_));
  EXPECT_EQ(reopened.cache_persistence()->recovery_stats().total_dropped(), 0);
  EXPECT_GT(reopened.cache().num_entries(), 0);
}

TEST_F(ScrubTest, DetachedStoreIsANormalState) {
  SudafSession session(&catalog_);
  Warm(&session);
  IntegrityScrubber scrubber(&session);
  ScrubReport report = scrubber.RunOnce();
  EXPECT_FALSE(report.store_attached);
  EXPECT_TRUE(report.error.ok());
  EXPECT_FALSE(report.found_damage());
  EXPECT_EQ(session.metrics().counter("sudaf.scrub.errors")->value(), 0);
}

TEST_F(ScrubTest, BackgroundThreadScrubsPeriodically) {
  SudafSession session(&catalog_);
  Warm(&session);
  ScrubOptions opts;
  opts.interval_ms = 2;
  IntegrityScrubber scrubber(&session, opts);
  ASSERT_OK(scrubber.Start());
  EXPECT_TRUE(scrubber.running());
  EXPECT_EQ(scrubber.Start().code(), StatusCode::kAlreadyExists);

  // Queries keep running while the scrubber works.
  for (int i = 0; i < 5; ++i) Warm(&session);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (scrubber.passes() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(scrubber.passes(), 2);
  scrubber.Stop();
  EXPECT_FALSE(scrubber.running());
  int64_t passes_at_stop = scrubber.passes();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(scrubber.passes(), passes_at_stop);  // really stopped
}

// ---------------------------------------------------------------------------
// Orphaned-tmp sweep at attach (the WriteFileAtomic crash-litter fix)
// ---------------------------------------------------------------------------

TEST_F(ScrubTest, AttachSweepsOrphanedTmpFiles) {
  // A crash between tmp-write and rename leaves litter behind; recovery
  // sweeps it so it can never be confused for (or grow into) real state.
  ASSERT_OK(EnsureDirectory(dir_));
  ASSERT_OK(WriteFileAtomic(dir_ + "/cache.snapshot.tmp", "crash litter"));
  ASSERT_OK(WriteFileAtomic(dir_ + "/cache.wal.tmp", "more litter"));
  ASSERT_OK(WriteFileAtomic(dir_ + "/unrelated.txt", "keep me"));

  SudafSession session(&catalog_);
  ASSERT_OK(session.EnableCachePersistence(dir_));
  EXPECT_EQ(session.cache_persistence()->recovery_stats().orphan_tmps_removed,
            2);
  EXPECT_FALSE(FileExists(dir_ + "/cache.snapshot.tmp"));
  EXPECT_FALSE(FileExists(dir_ + "/cache.wal.tmp"));
  EXPECT_TRUE(FileExists(dir_ + "/unrelated.txt"));  // not ours, not touched
}

}  // namespace
}  // namespace sudaf

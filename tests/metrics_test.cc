// Observability layer tests: the metrics registry must stay consistent
// under ThreadPool concurrency, traces must keep their nesting invariants
// and bounded buffers, the profile JSON must match the documented
// "sudaf.profile.v1" schema (docs/observability.md), and ExecStats must be
// a faithful projection of the registry delta.

#include <cmath>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "gtest/gtest.h"
#include "sudaf/session.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistryTest, HandlesAreStableAndFindOrCreate) {
  MetricsRegistry registry;
  Counter* a = registry.counter("sudaf.test.a");
  Counter* again = registry.counter("sudaf.test.a");
  EXPECT_EQ(a, again);
  a->Add(3);
  again->Add();
  EXPECT_EQ(registry.Snapshot().counter("sudaf.test.a"), 4);
  // Kinds live in separate namespaces: a dcounter may reuse the name.
  registry.dcounter("sudaf.test.a")->Add(2.5);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("sudaf.test.a"), 4);
  EXPECT_DOUBLE_EQ(snap.dcounter("sudaf.test.a"), 2.5);
  // Unregistered names read as zero, not as errors.
  EXPECT_EQ(snap.counter("sudaf.test.never"), 0);
}

TEST(MetricsRegistryTest, DeltaSubtractsCountersAndDcounters) {
  MetricsRegistry registry;
  registry.counter("c")->Add(10);
  registry.dcounter("d")->Add(1.5);
  registry.gauge("g")->Set(7);
  MetricsSnapshot before = registry.Snapshot();
  registry.counter("c")->Add(5);
  registry.dcounter("d")->Add(2.0);
  registry.gauge("g")->Set(9);
  MetricsSnapshot delta = registry.Snapshot().Delta(before);
  EXPECT_EQ(delta.counter("c"), 5);
  EXPECT_DOUBLE_EQ(delta.dcounter("d"), 2.0);
  // Gauges are instantaneous: Delta carries the latest value.
  EXPECT_DOUBLE_EQ(delta.gauge("g"), 9);
}

TEST(MetricsRegistryTest, HistogramTracksCountSumMinMax) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("h");
  for (double v : {0.25, 4.0, 64.0}) h->Observe(v);
  Histogram::Snapshot snap = h->snapshot();
  EXPECT_EQ(snap.count, 3);
  EXPECT_DOUBLE_EQ(snap.sum, 68.25);
  EXPECT_DOUBLE_EQ(snap.min, 0.25);
  EXPECT_DOUBLE_EQ(snap.max, 64.0);
  int64_t bucketed = 0;
  for (int64_t b : snap.buckets) bucketed += b;
  EXPECT_EQ(bucketed, 3);
}

// Concurrent updates, registrations and snapshots through a real
// ThreadPool; the TSan shard is the point of this test. Totals must come
// out exact — no lost updates.
TEST(MetricsRegistryTest, SnapshotConsistentUnderThreadPoolConcurrency) {
  MetricsRegistry registry;
  ThreadPool pool(4);
  constexpr int64_t kTasks = 64;
  constexpr int kAddsPerTask = 1000;
  pool.ParallelFor(kTasks, [&registry](int64_t i) {
    // Racing find-or-create on a small name set exercises registration.
    Counter* c = registry.counter("concurrent." + std::to_string(i % 4));
    DCounter* d = registry.dcounter("concurrent.ms");
    Histogram* h = registry.histogram("concurrent.dist");
    for (int k = 0; k < kAddsPerTask; ++k) {
      c->Add();
      d->Add(0.5);
      h->Observe(static_cast<double>(k % 7) + 0.5);
      if (k % 256 == 0) {
        // Snapshots race with updates by design; per-metric totals must
        // still be plain atomic reads (no torn values, no TSan report).
        (void)registry.Snapshot();
      }
    }
  });
  MetricsSnapshot snap = registry.Snapshot();
  int64_t total = 0;
  for (int j = 0; j < 4; ++j) {
    total += snap.counter("concurrent." + std::to_string(j));
  }
  EXPECT_EQ(total, kTasks * kAddsPerTask);
  EXPECT_DOUBLE_EQ(snap.dcounter("concurrent.ms"),
                   0.5 * kTasks * kAddsPerTask);
  EXPECT_EQ(snap.histograms.at("concurrent.dist").count,
            kTasks * kAddsPerTask);
}

// ---------------------------------------------------------------------------
// QueryTrace

TEST(QueryTraceTest, SpanNestingInvariantsHold) {
  QueryTrace trace;
  TraceSpan root(&trace, "execute");
  int root_id = root.id();
  {
    TraceSpan child(&trace, "rewrite", root_id);
    EXPECT_NE(child.id(), root_id);
    TraceSpan grandchild(&trace, "normalize", child.id());
    grandchild.Event("shape", 3);
  }
  root.Close();

  std::vector<QueryTrace::Span> spans = trace.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_EQ(spans[2].parent, spans[1].id);
  for (const QueryTrace::Span& s : spans) {
    EXPECT_GE(s.end_ms, s.start_ms) << s.name;
  }
  // Children open after and close before their parent.
  EXPECT_GE(spans[1].start_ms, spans[0].start_ms);
  EXPECT_LE(spans[1].end_ms, spans[0].end_ms);
  EXPECT_GE(spans[2].start_ms, spans[1].start_ms);
  EXPECT_LE(spans[2].end_ms, spans[1].end_ms);

  std::vector<QueryTrace::Event> events = trace.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].span, spans[2].id);
  EXPECT_EQ(events[0].value, 3);
}

TEST(QueryTraceTest, EventRingDropsOldestAndCounts) {
  QueryTrace trace(16);  // capacity clamps at 16
  TraceSpan span(&trace, "s");
  for (int i = 0; i < 20; ++i) span.Event("e", i);
  span.Close();
  std::vector<QueryTrace::Event> events = trace.events();
  ASSERT_EQ(events.size(), 16u);
  EXPECT_EQ(trace.dropped_events(), 4);
  // Oldest-first order with the four oldest gone.
  EXPECT_EQ(events.front().value, 4);
  EXPECT_EQ(events.back().value, 19);
  EXPECT_EQ(trace.EventCount("e"), 16);
}

TEST(QueryTraceTest, SpanCapDropsAndCounts) {
  QueryTrace trace(16);
  std::vector<int> ids;
  for (int i = 0; i < 20; ++i) ids.push_back(trace.BeginSpan("s"));
  for (int id : ids) trace.EndSpan(id);
  EXPECT_EQ(trace.spans().size(), 16u);
  EXPECT_EQ(trace.dropped_spans(), 4);
  EXPECT_EQ(ids.back(), -1);  // dropped spans report an invalid id
}

TEST(QueryTraceTest, TraceSpanAccumulatesDurationIntoDCounter) {
  MetricsRegistry registry;
  DCounter* acc = registry.dcounter("phase_ms");
  QueryTrace trace;
  {
    TraceSpan span(&trace, "phase", -1, acc);
  }
  // The metric and the span must agree — they are written from the same
  // measurement.
  EXPECT_DOUBLE_EQ(acc->value(), trace.SpanMs("phase"));
  // A null trace with a live DCounter still times (chunked executor uses
  // this as a bare RAII timer).
  double before = acc->value();
  { TraceSpan untraced(nullptr, "phase", -1, acc); }
  EXPECT_GE(acc->value(), before);
}

// ---------------------------------------------------------------------------
// Session-level profile schema and stats derivation

class ProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(99);
    std::vector<int64_t> g;
    std::vector<double> x;
    std::vector<double> y;
    for (int i = 0; i < 50000; ++i) {
      g.push_back(static_cast<int64_t>(rng.NextBelow(32)));
      double xv = rng.NextDoubleIn(0.5, 9.5);
      x.push_back(xv);
      y.push_back(2.0 * xv);
    }
    catalog_.PutTable("t", testing_util::MakeXyTable(g, x, y));
    session_ = std::make_unique<SudafSession>(&catalog_);
  }

  Catalog catalog_;
  std::unique_ptr<SudafSession> session_;
};

// Structural golden check of the documented sudaf.profile.v1 schema: every
// key docs/observability.md promises must be present. (Timings vary run to
// run, so the gold is the key set, not the values.)
const char* const kProfileSchemaKeys[] = {
    "\"schema\": \"sudaf.profile.v1\"",
    "\"total_ms\":",
    "\"phases\":",
    "\"rewrite_ms\":",
    "\"probe_ms\":",
    "\"input_ms\":",
    "\"filter_ms\":",
    "\"gather_ms\":",
    "\"group_ms\":",
    "\"states_ms\":",
    "\"terminate_ms\":",
    "\"states\":",
    "\"requested\":",
    "\"from_cache\":",
    "\"computed\":",
    "\"poisoned\":",
    "\"cache\":",
    "\"hits\":",
    "\"misses\":",
    "\"poison_evictions\":",
    "\"epoch_invalidations\":",
    "\"stale_discards\":",
    "\"evictions\":",
    "\"bytes_evicted\":",
    "\"budget_rejects\":",
    "\"fused\":",
    "\"used\":",
    "\"morsels\":",
    "\"channels\":",
    "\"slots\":",
    "\"shared_slots\":",
    "\"threads_used\":",
    "\"trace\":",
};

TEST_F(ProfileTest, ProfileJsonMatchesDocumentedSchema) {
  auto result = session_->Execute("SELECT g, var(x) FROM t GROUP BY g",
                                  ExecMode::kSudafShare);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::string json = result->ProfileJson();
  for (const char* key : kProfileSchemaKeys) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  // The trace section carries the phase spans (including the pipeline
  // sub-phases nested under "input") and the probe events.
  for (const char* span :
       {"\"execute\"", "\"rewrite\"", "\"probe\"", "\"input\"", "\"filter\"",
        "\"gather\"", "\"group\"", "\"states\"", "\"terminate\""}) {
    EXPECT_NE(json.find(span), std::string::npos) << "missing span " << span;
  }
  ASSERT_NE(result->trace, nullptr);
  EXPECT_EQ(result->trace->EventCount("cache.miss"), result->stats.num_states);

  // Warm run: probe hits replace the misses.
  auto warm = session_->Execute("SELECT g, var(x) FROM t GROUP BY g",
                                ExecMode::kSudafShare);
  ASSERT_TRUE(warm.ok());
  ASSERT_NE(warm->trace, nullptr);
  EXPECT_EQ(warm->trace->EventCount("cache.hit"), warm->stats.num_states);
  EXPECT_EQ(warm->trace->EventCount("cache.miss"), 0);
}

TEST_F(ProfileTest, PhaseSpansSumCloseToTotal) {
  auto result = session_->Execute(
      "SELECT g, kurtosis(x), var(x) FROM t GROUP BY g",
      ExecMode::kSudafShare);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ExecStats& stats = result->stats;
  double phase_sum = stats.rewrite_ms + stats.probe_ms + stats.input_ms +
                     stats.states_ms + stats.terminate_ms;
  EXPECT_GT(stats.total_ms, 0.0);
  EXPECT_LE(phase_sum, stats.total_ms * 1.01);
  // On a 50k-row query the untimed residue (parse, snapshotting) is small:
  // the phases must account for at least 90% of the total.
  if (stats.total_ms > 1.0) {
    EXPECT_GE(phase_sum, stats.total_ms * 0.9)
        << "phases " << phase_sum << " vs total " << stats.total_ms;
  }
  // And the trace spans are the same measurement as the stats fields.
  ASSERT_NE(result->trace, nullptr);
  EXPECT_DOUBLE_EQ(result->trace->SpanMs("rewrite"), stats.rewrite_ms);
  EXPECT_DOUBLE_EQ(result->trace->SpanMs("states"), stats.states_ms);
}

TEST_F(ProfileTest, ExplainReturnsPlanWithoutExecuting) {
  auto result = session_->Execute("EXPLAIN SELECT g, qm(x) FROM t GROUP BY g",
                                  ExecMode::kSudafShare);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT((*result)->num_rows(), 0);
  EXPECT_EQ((*result)->schema().field(0).name, "plan");
  std::string plan;
  for (int64_t r = 0; r < (*result)->num_rows(); ++r) {
    plan += (*result)->column(0).GetString(r);
    plan += '\n';
  }
  EXPECT_NE(plan.find("sum(x^2)"), std::string::npos);
  // Nothing executed: no states were requested and the cache stayed cold.
  EXPECT_EQ(result->stats.num_states, 0);
  EXPECT_EQ(session_->cache().num_entries(), 0);
}

TEST_F(ProfileTest, ExplainAnalyzeExecutesAndReturnsProfile) {
  auto result = session_->Execute(
      "EXPLAIN ANALYZE SELECT g, var(x) FROM t GROUP BY g",
      ExecMode::kSudafShare);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ((*result)->schema().field(0).name, "profile");
  std::string text;
  for (int64_t r = 0; r < (*result)->num_rows(); ++r) {
    text += (*result)->column(0).GetString(r);
    text += '\n';
  }
  for (const char* phase :
       {"rewrite", "probe", "input", "states", "terminate"}) {
    EXPECT_NE(text.find(phase), std::string::npos) << "missing " << phase;
  }
  // It really executed: stats are the analyzed query's and the cache is
  // warm now.
  EXPECT_EQ(result->stats.num_states, 3);
  EXPECT_GT(session_->cache().num_entries(), 0);
}

TEST_F(ProfileTest, StatsArePerResultNeverStale) {
  auto first = session_->Execute("SELECT g, var(x) FROM t GROUP BY g",
                                 ExecMode::kSudafShare);
  ASSERT_TRUE(first.ok());
  ASSERT_GT(first->stats.num_states, 0);
  // Regression (historical): a parse-time failure used to leave the
  // previous query's stats readable through a session-level accessor.
  // Stats now live only on each QueryResult, so a failed query yields no
  // stats at all and cannot alias an earlier query's numbers.
  ASSERT_FALSE(session_->Execute("not sql at all", ExecMode::kSudafShare).ok());
  // The earlier result's stats are untouched by the failure.
  EXPECT_GT(first->stats.num_states, 0);
  // And a fresh successful query reports its own numbers independently.
  auto again = session_->Execute("SELECT g, var(x) FROM t GROUP BY g",
                                 ExecMode::kSudafShare);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->stats.num_states, first->stats.num_states);
  EXPECT_GT(again->stats.states_from_cache, 0);
  EXPECT_EQ(first->stats.states_from_cache, 0);
}

TEST_F(ProfileTest, ExecStatsIsTheRegistryDelta) {
  MetricsSnapshot before = session_->metrics().Snapshot();
  auto result = session_->Execute("SELECT g, var(x) FROM t GROUP BY g",
                                  ExecMode::kSudafShare);
  ASSERT_TRUE(result.ok());
  MetricsSnapshot delta = session_->metrics().Snapshot().Delta(before);
  const ExecStats& stats = result->stats;
  EXPECT_EQ(stats.num_states, delta.counter("sudaf.states.requested"));
  EXPECT_EQ(stats.states_computed, delta.counter("sudaf.states.computed"));
  EXPECT_EQ(stats.states_from_cache, delta.counter("sudaf.states.from_cache"));
  EXPECT_EQ(stats.used_fused, delta.counter("sudaf.fused.passes") > 0);
  EXPECT_EQ(stats.scanned_base_data, delta.counter("sudaf.input.scans") > 0);
  EXPECT_DOUBLE_EQ(stats.total_ms, delta.dcounter("sudaf.query.total_ms"));
  EXPECT_EQ(delta.counter("sudaf.query.count"), 1);
  EXPECT_EQ(delta.counter("sudaf.query.errors"), 0);
  // The registry is cumulative across queries; a second query doubles the
  // query count but the derived stats stay per-query.
  ASSERT_TRUE(session_
                  ->Execute("SELECT g, var(x) FROM t GROUP BY g",
                            ExecMode::kSudafShare)
                  .ok());
  EXPECT_EQ(session_->metrics().Snapshot().counter("sudaf.query.count"), 2);
}

TEST_F(ProfileTest, TracingCanBeDisabled) {
  SudafSession quiet(&catalog_, SessionOptions{}.set_collect_traces(false));
  auto result =
      quiet.Execute("SELECT g, var(x) FROM t GROUP BY g",
                    ExecMode::kSudafShare);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->trace, nullptr);
  // The profile JSON still validates — trace is null, cache hit/miss fall
  // back to the stats counters.
  std::string json = result->ProfileJson();
  EXPECT_NE(json.find("\"schema\": \"sudaf.profile.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"trace\": null"), std::string::npos);
  EXPECT_EQ(result->stats.num_states, 3);
}

}  // namespace
}  // namespace sudaf

// Randomized end-to-end property tests.
//
// 1. Random UDAF expressions (built from the SUDAF primitive grammar) are
//    executed through the rewrite pipeline and compared against a direct
//    reference evaluation of the same mathematics — the rewrite must be
//    semantics-preserving for *every* expressible UDAF, not just the
//    library ones.
// 2. The share-mode execution must agree with no-share on arbitrary query
//    sequences (cache coherence under random interleavings).

#include <cmath>
#include <sstream>

#include "common/rng.h"
#include "expr/evaluator.h"
#include "expr/parser.h"
#include "gtest/gtest.h"
#include "sudaf/session.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

using testing_util::ExpectClose;

// Builds a random UDAF expression over column "x" from SUDAF's grammar:
// scalar chains inside sum/prod, combined with binary operators and count().
std::string RandomUdafExpression(Rng* rng, int depth = 0) {
  switch (depth < 2 ? rng->NextBelow(6) : rng->NextBelow(4)) {
    case 0: {  // sum of a scalar chain
      static const char* kChains[] = {"x",      "x^2",       "x^3",
                                      "2*x",    "ln(x)",     "sqrt(x)",
                                      "x^-1",   "ln(x)^2",   "exp(x/10)",
                                      "0.5*x^2"};
      std::ostringstream os;
      os << "sum(" << kChains[rng->NextBelow(10)] << ")";
      return os.str();
    }
    case 1:
      return "count()";
    case 2: {  // prod of a tame chain (values near 1 to avoid overflow)
      static const char* kChains[] = {"x^0.01", "exp(x/1000)"};
      std::ostringstream os;
      os << "prod(" << kChains[rng->NextBelow(2)] << ")";
      return os.str();
    }
    case 3: {
      std::ostringstream os;
      os << (rng->NextBelow(2) == 0 ? "min(x)" : "max(x)");
      return os.str();
    }
    case 4: {  // binary combination
      static const char* kOps[] = {"+", "-", "*", "/"};
      std::ostringstream os;
      os << "(" << RandomUdafExpression(rng, depth + 1) << " "
         << kOps[rng->NextBelow(4)] << " "
         << RandomUdafExpression(rng, depth + 1) << ")";
      return os.str();
    }
    default: {  // scalar wrapper
      static const char* kWraps[] = {"sqrt", "ln", "abs"};
      std::ostringstream os;
      os << kWraps[rng->NextBelow(3)] << "("
         << RandomUdafExpression(rng, depth + 1) << ")";
      return os.str();
    }
  }
}

class RandomUdafProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomUdafProperty, RewriteMatchesDirectEvaluation) {
  Rng rng(9000 + GetParam());

  // One group, positive data.
  const int n = 64;
  std::vector<int64_t> g(n, 0);
  std::vector<double> x(n);
  for (double& v : x) v = rng.NextDoubleIn(0.5, 4.0);
  Catalog catalog;
  catalog.PutTable("t", testing_util::MakeXyTable(g, x, x));
  SudafSession session(&catalog);

  for (int trial = 0; trial < 12; ++trial) {
    std::string expression = RandomUdafExpression(&rng);

    // Reference: substitute the aggregate calls by directly computed
    // values via the expression evaluator.
    auto parsed = ParseExpression(expression);
    ASSERT_TRUE(parsed.ok()) << expression;
    auto form = Canonicalize(**parsed);
    ASSERT_TRUE(form.ok()) << expression;
    std::vector<double> state_values;
    for (const AggStateDef& state : form->states) {
      double acc = state.op == AggOp::kProd ? 1.0 : 0.0;
      if (state.op == AggOp::kMin) acc = HUGE_VAL;
      if (state.op == AggOp::kMax) acc = -HUGE_VAL;
      if (state.op == AggOp::kCount) {
        acc = n;
      } else {
        for (double v : x) {
          RowAccessor accessor = [v](const std::string& col,
                                     int64_t) -> Result<Value> {
            if (col == "x") return Value(v);
            return Status::NotFound(col);
          };
          auto fv = EvalRow(*state.input, accessor, 0);
          ASSERT_TRUE(fv.ok()) << state.ToString();
          double f = fv->AsDouble();
          switch (state.op) {
            case AggOp::kSum:
              acc += f;
              break;
            case AggOp::kProd:
              acc *= f;
              break;
            case AggOp::kMin:
              acc = std::min(acc, f);
              break;
            case AggOp::kMax:
              acc = std::max(acc, f);
              break;
            default:
              break;
          }
        }
      }
      state_values.push_back(acc);
    }
    auto reference = EvalTerminating(*form->terminating[0], state_values);
    ASSERT_TRUE(reference.ok()) << expression;

    // Both SUDAF modes (share runs twice: cold + warm).
    std::string sql = "SELECT " + expression + " AS out FROM t";
    for (int run = 0; run < 3; ++run) {
      ExecMode mode = run == 0 ? ExecMode::kSudafNoShare
                               : ExecMode::kSudafShare;
      auto result = session.Execute(sql, mode);
      ASSERT_TRUE(result.ok()) << expression << ": "
                               << result.status().ToString();
      ASSERT_EQ((*result)->num_rows(), 1);
      double actual = (*result)->column(0).GetFloat64(0);
      ExpectClose(*reference, actual, 1e-7);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomUdafProperty, ::testing::Range(0, 10));

// Cache coherence: a random interleaving of library UDAFs over random
// grouped data — share mode must equal no-share on every query.
class RandomSequenceProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomSequenceProperty, ShareAgreesWithNoShareEverywhere) {
  Rng rng(7000 + GetParam());
  const int n = 400;
  std::vector<int64_t> g(n);
  std::vector<double> x(n), y(n);
  for (int i = 0; i < n; ++i) {
    g[i] = static_cast<int64_t>(rng.NextBelow(4));
    x[i] = rng.NextDoubleIn(0.5, 9.5);
    y[i] = rng.NextDoubleIn(0.5, 9.5);
  }
  Catalog catalog;
  catalog.PutTable("t", testing_util::MakeXyTable(g, x, y));
  SudafSession session(&catalog);

  const char* kAggs[] = {"sum",  "avg",      "var", "stddev",  "qm",
                         "cm",   "hm",       "gm",  "skewness", "kurtosis",
                         "min",  "max",      "count", "logsumexp"};
  for (int q = 0; q < 25; ++q) {
    std::string agg = kAggs[rng.NextBelow(14)];
    bool grouped = rng.NextBelow(2) == 0;
    std::string sql = grouped
                          ? "SELECT g, " + agg + "(x) FROM t GROUP BY g "
                            "ORDER BY g"
                          : "SELECT " + agg + "(x) FROM t";
    auto expected = session.Execute(sql, ExecMode::kSudafNoShare);
    auto actual = session.Execute(sql, ExecMode::kSudafShare);
    ASSERT_TRUE(expected.ok()) << sql;
    ASSERT_TRUE(actual.ok()) << sql;
    ASSERT_EQ((*expected)->num_rows(), (*actual)->num_rows()) << sql;
    int value_col = grouped ? 1 : 0;
    for (int64_t r = 0; r < (*expected)->num_rows(); ++r) {
      ExpectClose((*expected)->column(value_col).GetFloat64(r),
                  (*actual)->column(value_col).GetFloat64(r), 1e-8);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSequenceProperty,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace sudaf

// Assorted cross-cutting regression tests: symbolic space at l=3, chunked
// sharing under partitioned execution, HAVING interaction with the cache,
// multi-key ordering, and CSV-loaded tables flowing through SUDAF.

#include <cstdio>
#include <fstream>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "storage/csv.h"
#include "sudaf/chunked.h"
#include "sudaf/symbolic.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

using testing_util::ExpectClose;

TEST(SymbolicSpaceL3Test, SizeMatchesBoundAndClassesNest) {
  SymbolicSpace l2 = SymbolicSpace::Build(2);
  SymbolicSpace l3 = SymbolicSpace::Build(3);
  EXPECT_EQ(l3.states().size(), 170u);  // 2(4^4-1)/3
  // Growing l only refines: l3 has at least as many classes as l2.
  EXPECT_GE(l3.num_classes(), l2.num_classes());
}

TEST(ChunkedPartitionedTest, AgreesUnderSparkExecution) {
  Schema schema;
  ASSERT_OK(schema.AddField({"ts", DataType::kInt64}));
  ASSERT_OK(schema.AddField({"v", DataType::kFloat64}));
  auto table = std::make_unique<Table>(std::move(schema));
  Rng rng(99);
  for (int i = 0; i < 4000; ++i) {
    table->column(0).AppendInt64(rng.NextBelow(400));
    table->column(1).AppendFloat64(rng.NextDoubleIn(1.0, 5.0));
  }
  table->FinishBulkAppend();
  Catalog catalog;
  catalog.PutTable("t", std::move(table));

  ExecOptions spark;
  spark.partitioned = true;
  spark.num_partitions = 4;
  SudafSession session(&catalog, spark);
  ChunkedSharingSession chunked(&session, "t", "ts", 100);

  const std::string sql =
      "SELECT stddev(v), qm(v) FROM t WHERE ts >= 100 AND ts < 300";
  auto direct = session.Execute(sql, ExecMode::kSudafNoShare);
  auto via_chunks = chunked.Execute(sql);
  ASSERT_TRUE(direct.ok() && via_chunks.ok());
  for (int c = 0; c < 2; ++c) {
    ExpectClose((*direct)->column(c).GetFloat64(0),
                (*via_chunks)->column(c).GetFloat64(0), 1e-9);
  }
}

TEST(HavingCacheTest, HavingDoesNotFragmentTheCache) {
  // HAVING runs after aggregation, so two queries differing only in HAVING
  // have the same data signature and share all states.
  std::vector<int64_t> g = {0, 0, 1, 1, 1, 2};
  std::vector<double> x = {1, 2, 3, 4, 5, 6};
  Catalog catalog;
  catalog.PutTable("t", testing_util::MakeXyTable(g, x, x));
  SudafSession session(&catalog);

  auto first = session.Execute(
      "SELECT g, avg(x) m FROM t GROUP BY g HAVING m > 1",
      ExecMode::kSudafShare);
  ASSERT_TRUE(first.ok());
  auto second = session.Execute(
      "SELECT g, avg(x) m FROM t GROUP BY g HAVING m > 4",
      ExecMode::kSudafShare);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->stats.states_from_cache, 2);
  EXPECT_FALSE(second->stats.scanned_base_data);
  EXPECT_EQ((*second)->num_rows(), 1);
}

TEST(MultiKeyOrderTest, OrdersByTwoKeysWithDirections) {
  std::vector<int64_t> g = {1, 1, 2, 2};
  std::vector<double> x = {5, 5, 7, 7};
  std::vector<double> y = {1, 2, 1, 2};
  Catalog catalog;
  Schema schema;
  ASSERT_OK(schema.AddField({"a", DataType::kInt64}));
  ASSERT_OK(schema.AddField({"b", DataType::kInt64}));
  ASSERT_OK(schema.AddField({"v", DataType::kFloat64}));
  auto table = std::make_unique<Table>(std::move(schema));
  for (int i = 0; i < 4; ++i) {
    table->AppendRow({Value(g[i]), Value(static_cast<int64_t>(y[i])),
                      Value(x[i])});
  }
  catalog.PutTable("t", std::move(table));
  SudafSession session(&catalog);
  auto result = session.Execute(
      "SELECT a, b, sum(v) FROM t GROUP BY a, b ORDER BY a DESC, b ASC",
      ExecMode::kSudafNoShare);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ((*result)->num_rows(), 4);
  EXPECT_EQ((*result)->column(0).GetInt64(0), 2);
  EXPECT_EQ((*result)->column(1).GetInt64(0), 1);
  EXPECT_EQ((*result)->column(0).GetInt64(3), 1);
  EXPECT_EQ((*result)->column(1).GetInt64(3), 2);
}

TEST(CsvToSudafTest, ImportedTableRunsThroughTheWholePipeline) {
  std::string path = testing::TempDir() + "/pipeline.csv";
  {
    std::ofstream out(path);
    out << "city,pop\n";
    out << "a,10\nb,20\na,30\nb,40\na,50\n";
  }
  ASSERT_OK_AND_ASSIGN(auto table, ReadCsvInferSchema(path));
  Catalog catalog;
  catalog.PutTable("cities", std::move(table));
  SudafSession session(&catalog);
  auto result = session.Execute(
      "SELECT city, qm(pop) FROM cities GROUP BY city ORDER BY city",
      ExecMode::kSudafShare);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ((*result)->num_rows(), 2);
  ExpectClose(std::sqrt((100.0 + 900.0 + 2500.0) / 3.0),
              (*result)->column(1).GetFloat64(0));
}

TEST(LazyTerminatingTest, NativeSolverRunsOnlyForLimitedGroups) {
  // 50 groups, LIMIT 3 ordered by key: the MomentSolver should not run 50
  // times. We detect this through a counting native UDAF.
  std::vector<int64_t> g;
  std::vector<double> x;
  Rng rng(123);
  for (int i = 0; i < 500; ++i) {
    g.push_back(static_cast<int64_t>(rng.NextBelow(50)));
    x.push_back(rng.NextDoubleIn(1.0, 2.0));
  }
  Catalog catalog;
  catalog.PutTable("t", testing_util::MakeXyTable(g, x, x));
  SudafSession session(&catalog);

  auto calls = std::make_shared<int>(0);
  NativeUdaf udaf;
  udaf.name = "counting_mid";
  udaf.state_templates = {"min(x)", "max(x)"};
  udaf.terminate =
      [calls](const std::vector<double>& s) -> Result<double> {
    ++*calls;
    return (s[0] + s[1]) / 2.0;
  };
  ASSERT_OK(session.library().DefineNative(std::move(udaf)));

  auto result = session.Execute(
      "SELECT g, counting_mid(x) FROM t GROUP BY g ORDER BY g LIMIT 3",
      ExecMode::kSudafNoShare);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ((*result)->num_rows(), 3);
  EXPECT_EQ(*calls, 3);  // not 50
}

}  // namespace
}  // namespace sudaf

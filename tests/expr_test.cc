// Tests for expr/: lexer, parser, AST utilities and evaluators.

#include <cmath>

#include "expr/evaluator.h"
#include "expr/lexer.h"
#include "expr/parser.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

using testing_util::ExpectClose;

// --- Lexer -------------------------------------------------------------------

TEST(LexerTest, TokenizesMixedInput) {
  ASSERT_OK_AND_ASSIGN(std::vector<Token> tokens,
                       Tokenize("sum(x) >= 3.5e2 and s = 'it''s'"));
  ASSERT_EQ(tokens.back().kind, TokenKind::kEnd);
  EXPECT_TRUE(tokens[0].IsKeyword("SUM"));
  EXPECT_TRUE(tokens[1].IsSymbol("("));
  EXPECT_TRUE(tokens[4].IsSymbol(">="));
  EXPECT_DOUBLE_EQ(tokens[5].number, 350.0);
  EXPECT_FALSE(tokens[5].is_integer);
  // Escaped quote in string literal.
  EXPECT_EQ(tokens[9].kind, TokenKind::kString);
  EXPECT_EQ(tokens[9].text, "it's");
}

TEST(LexerTest, IntegerFlag) {
  ASSERT_OK_AND_ASSIGN(std::vector<Token> tokens, Tokenize("42 4.5 1e3"));
  EXPECT_TRUE(tokens[0].is_integer);
  EXPECT_FALSE(tokens[1].is_integer);
  EXPECT_FALSE(tokens[2].is_integer);
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'abc").ok());
}

TEST(LexerTest, UnknownCharacterFails) {
  EXPECT_FALSE(Tokenize("a ? b").ok());
}

// --- Parser ------------------------------------------------------------------

TEST(ParserTest, Precedence) {
  ASSERT_OK_AND_ASSIGN(ExprPtr e, ParseExpression("1 + 2 * 3 ^ 2"));
  ASSERT_OK_AND_ASSIGN(Value v, EvalRow(*e, nullptr, 0));
  EXPECT_DOUBLE_EQ(v.AsDouble(), 19.0);
}

TEST(ParserTest, PowerIsRightAssociative) {
  ASSERT_OK_AND_ASSIGN(ExprPtr e, ParseExpression("2 ^ 3 ^ 2"));
  ASSERT_OK_AND_ASSIGN(Value v, EvalRow(*e, nullptr, 0));
  EXPECT_DOUBLE_EQ(v.AsDouble(), 512.0);  // 2^(3^2)
}

TEST(ParserTest, NegativeExponent) {
  ASSERT_OK_AND_ASSIGN(ExprPtr e, ParseExpression("2 ^ -2"));
  ASSERT_OK_AND_ASSIGN(Value v, EvalRow(*e, nullptr, 0));
  EXPECT_DOUBLE_EQ(v.AsDouble(), 0.25);
}

TEST(ParserTest, UnaryMinusBindsTighterThanMul) {
  ASSERT_OK_AND_ASSIGN(ExprPtr e, ParseExpression("-2 * 3"));
  ASSERT_OK_AND_ASSIGN(Value v, EvalRow(*e, nullptr, 0));
  EXPECT_DOUBLE_EQ(v.AsDouble(), -6.0);
}

TEST(ParserTest, AggregateCallsParseAsAggNodes) {
  ASSERT_OK_AND_ASSIGN(ExprPtr e, ParseExpression("sum(x^2) / count()"));
  std::vector<const Expr*> aggs;
  e->CollectAggCalls(&aggs);
  ASSERT_EQ(aggs.size(), 2u);
  EXPECT_EQ(aggs[0]->agg_op, AggOp::kSum);
  EXPECT_EQ(aggs[1]->agg_op, AggOp::kCount);
}

TEST(ParserTest, CountStarSupported) {
  ASSERT_OK_AND_ASSIGN(ExprPtr e, ParseExpression("count(*)"));
  EXPECT_EQ(e->kind, ExprKind::kAggCall);
  EXPECT_EQ(e->agg_op, AggOp::kCount);
  EXPECT_TRUE(e->args.empty());
}

TEST(ParserTest, ProdAlias) {
  ASSERT_OK_AND_ASSIGN(ExprPtr a, ParseExpression("prod(x)"));
  ASSERT_OK_AND_ASSIGN(ExprPtr b, ParseExpression("product(x)"));
  EXPECT_TRUE(a->Equals(*b));
}

TEST(ParserTest, FunctionNamesLowercased) {
  ASSERT_OK_AND_ASSIGN(ExprPtr e, ParseExpression("SQRT(x)"));
  EXPECT_EQ(e->func_name, "sqrt");
}

TEST(ParserTest, SumWithoutArgumentFails) {
  EXPECT_FALSE(ParseExpression("sum()").ok());
}

TEST(ParserTest, TrailingInputFails) {
  EXPECT_FALSE(ParseExpression("1 + 2 3").ok());
}

TEST(ParserTest, UnbalancedParensFails) {
  EXPECT_FALSE(ParseExpression("(1 + 2").ok());
}

TEST(ParserTest, ComparisonAndLogic) {
  ASSERT_OK_AND_ASSIGN(ExprPtr e,
                       ParseExpression("1 < 2 and (3 >= 4 or 1 <> 2)"));
  ASSERT_OK_AND_ASSIGN(Value v, EvalRow(*e, nullptr, 0));
  EXPECT_DOUBLE_EQ(v.AsDouble(), 1.0);
}

// --- AST utilities ------------------------------------------------------------

TEST(ExprTest, CloneAndEquals) {
  ASSERT_OK_AND_ASSIGN(ExprPtr e, ParseExpression("sum(x*y) / count()"));
  ExprPtr copy = e->Clone();
  EXPECT_TRUE(e->Equals(*copy));
  ASSERT_OK_AND_ASSIGN(ExprPtr other, ParseExpression("sum(x*y) / sum(x)"));
  EXPECT_FALSE(e->Equals(*other));
}

TEST(ExprTest, CollectColumns) {
  ASSERT_OK_AND_ASSIGN(ExprPtr e, ParseExpression("a + b * a"));
  std::vector<std::string> cols;
  e->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::vector<std::string>{"a", "b", "a"}));
}

TEST(ExprTest, ContainsAggregate) {
  ASSERT_OK_AND_ASSIGN(ExprPtr with, ParseExpression("1 + sum(x)"));
  ASSERT_OK_AND_ASSIGN(ExprPtr without, ParseExpression("1 + x"));
  EXPECT_TRUE(with->ContainsAggregate());
  EXPECT_FALSE(without->ContainsAggregate());
}

TEST(ExprTest, ExpandFunctionCalls) {
  ASSERT_OK_AND_ASSIGN(ExprPtr body, ParseExpression("sum(x)/count()"));
  ASSERT_OK_AND_ASSIGN(ExprPtr call, ParseExpression("1 + myavg(a*b)"));
  ExprPtr expanded = ExpandFunctionCalls(*call, "myavg", {"x"}, *body);
  ASSERT_OK_AND_ASSIGN(ExprPtr expected,
                       ParseExpression("1 + sum(a*b)/count()"));
  EXPECT_TRUE(expanded->Equals(*expected))
      << expanded->ToString() << " vs " << expected->ToString();
}

TEST(ExprTest, ExpandHandlesNestedCalls) {
  ASSERT_OK_AND_ASSIGN(ExprPtr body, ParseExpression("sum(x)"));
  ASSERT_OK_AND_ASSIGN(ExprPtr call, ParseExpression("f(f(a))"));
  ExprPtr expanded = ExpandFunctionCalls(*call, "f", {"x"}, *body);
  ASSERT_OK_AND_ASSIGN(ExprPtr expected, ParseExpression("sum(sum(a))"));
  EXPECT_TRUE(expanded->Equals(*expected)) << expanded->ToString();
}

// --- Evaluators -----------------------------------------------------------------

TEST(ScalarFuncTest, KnownFunctions) {
  ASSERT_OK_AND_ASSIGN(double s, ApplyScalarFunc("sqrt", {9.0}));
  EXPECT_DOUBLE_EQ(s, 3.0);
  ASSERT_OK_AND_ASSIGN(double l, ApplyScalarFunc("log", {2.0, 8.0}));
  EXPECT_DOUBLE_EQ(l, 3.0);
  ASSERT_OK_AND_ASSIGN(double g, ApplyScalarFunc("sgn", {-4.0}));
  EXPECT_DOUBLE_EQ(g, -1.0);
  ASSERT_OK_AND_ASSIGN(double n, ApplyScalarFunc("nullif", {2.0, 2.0}));
  EXPECT_TRUE(std::isnan(n));
  ASSERT_OK_AND_ASSIGN(double n2, ApplyScalarFunc("nullif", {2.0, 3.0}));
  EXPECT_DOUBLE_EQ(n2, 2.0);
}

TEST(ScalarFuncTest, UnknownAndWrongArity) {
  EXPECT_FALSE(ApplyScalarFunc("frobnicate", {1.0}).ok());
  EXPECT_FALSE(ApplyScalarFunc("sqrt", {1.0, 2.0}).ok());
  EXPECT_TRUE(IsKnownScalarFunc("ln"));
  EXPECT_FALSE(IsKnownScalarFunc("median"));
}

TEST(EvalRowTest, ColumnsAndStrings) {
  RowAccessor accessor = [](const std::string& col,
                            int64_t row) -> Result<Value> {
    if (col == "x") return Value(static_cast<double>(row) + 1.0);
    if (col == "s") return Value(std::string(row == 0 ? "TN" : "CA"));
    return Status::NotFound(col);
  };
  ASSERT_OK_AND_ASSIGN(ExprPtr e, ParseExpression("x * 2 + 1"));
  ASSERT_OK_AND_ASSIGN(Value v, EvalRow(*e, accessor, 2));
  EXPECT_DOUBLE_EQ(v.AsDouble(), 7.0);

  ASSERT_OK_AND_ASSIGN(ExprPtr pred, ParseExpression("s = 'TN'"));
  ASSERT_OK_AND_ASSIGN(Value p0, EvalRow(*pred, accessor, 0));
  ASSERT_OK_AND_ASSIGN(Value p1, EvalRow(*pred, accessor, 1));
  EXPECT_DOUBLE_EQ(p0.AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(p1.AsDouble(), 0.0);
}

TEST(EvalRowTest, StringNumberComparisonIsError) {
  RowAccessor accessor = [](const std::string&, int64_t) -> Result<Value> {
    return Value(std::string("a"));
  };
  ASSERT_OK_AND_ASSIGN(ExprPtr e, ParseExpression("s = 1"));
  EXPECT_FALSE(EvalRow(*e, accessor, 0).ok());
}

TEST(EvalRowTest, AggregateInRowContextIsError) {
  ASSERT_OK_AND_ASSIGN(ExprPtr e, ParseExpression("sum(x)"));
  EXPECT_FALSE(EvalRow(*e, nullptr, 0).ok());
}

TEST(EvalVectorTest, ComputesPerRow) {
  Column x(DataType::kFloat64);
  for (double v : {1.0, 2.0, 3.0}) x.AppendFloat64(v);
  ColumnResolver resolver = [&x](const std::string& name)
      -> Result<const Column*> {
    if (name == "x") return &x;
    return Status::NotFound(name);
  };
  ASSERT_OK_AND_ASSIGN(ExprPtr e, ParseExpression("sqrt(x^2 * 4)"));
  ASSERT_OK_AND_ASSIGN(std::vector<double> out,
                       EvalNumericVector(*e, resolver, 3));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 2.0);
  EXPECT_DOUBLE_EQ(out[2], 6.0);
}

TEST(EvalVectorTest, IntColumnsWiden) {
  Column x(DataType::kInt64);
  x.AppendInt64(4);
  ColumnResolver resolver = [&x](const std::string&)
      -> Result<const Column*> { return &x; };
  ASSERT_OK_AND_ASSIGN(ExprPtr e, ParseExpression("x / 8"));
  ASSERT_OK_AND_ASSIGN(std::vector<double> out,
                       EvalNumericVector(*e, resolver, 1));
  EXPECT_DOUBLE_EQ(out[0], 0.5);
}

TEST(EvalVectorTest, StringColumnIsError) {
  Column s(DataType::kString);
  s.AppendString("a");
  ColumnResolver resolver = [&s](const std::string&)
      -> Result<const Column*> { return &s; };
  ASSERT_OK_AND_ASSIGN(ExprPtr e, ParseExpression("x + 1"));
  EXPECT_FALSE(EvalNumericVector(*e, resolver, 1).ok());
}

TEST(EvalTerminatingTest, StateRefsAndFunctions) {
  // T = sqrt(s3/s1 - (s2/s1)^2), the stddev terminating function.
  ExprPtr t = Expr::Func(
      "sqrt",
      [] {
        std::vector<ExprPtr> args;
        args.push_back(Expr::Binary(
            BinaryOp::kSub,
            Expr::Binary(BinaryOp::kDiv, Expr::StateRef(2),
                         Expr::StateRef(0)),
            Expr::Binary(BinaryOp::kPow,
                         Expr::Binary(BinaryOp::kDiv, Expr::StateRef(1),
                                      Expr::StateRef(0)),
                         Expr::Number(2.0))));
        return args;
      }());
  // X = {1, 2, 3}: n=3, Σx=6, Σx²=14 -> stddev = sqrt(14/3 - 4).
  ASSERT_OK_AND_ASSIGN(double v, EvalTerminating(*t, {3.0, 6.0, 14.0}));
  ExpectClose(std::sqrt(14.0 / 3.0 - 4.0), v);
}

TEST(EvalTerminatingTest, ColumnRefIsError) {
  ASSERT_OK_AND_ASSIGN(ExprPtr e, ParseExpression("x + 1"));
  EXPECT_FALSE(EvalTerminating(*e, {}).ok());
}

TEST(EvalTerminatingTest, OutOfRangeStateIsError) {
  ExprPtr e = Expr::StateRef(3);
  EXPECT_FALSE(EvalTerminating(*e, {1.0}).ok());
}

}  // namespace
}  // namespace sudaf

// Tests for sudaf/view_rewrite: materialized partial-aggregate views and
// rollup rewriting (the Q3 / RQ3' experiment).

#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "sudaf/view_rewrite.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

using testing_util::ExpectClose;

class ViewRewriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // fact(item INT64, year INT64, price FLOAT64) + item_dim(ik, cat).
    Schema fact_schema;
    ASSERT_OK(fact_schema.AddField({"item", DataType::kInt64}));
    ASSERT_OK(fact_schema.AddField({"year", DataType::kInt64}));
    ASSERT_OK(fact_schema.AddField({"price", DataType::kFloat64}));
    auto fact = std::make_unique<Table>(std::move(fact_schema));
    Rng rng(555);
    for (int i = 0; i < 500; ++i) {
      fact->column(0).AppendInt64(1 + rng.NextBelow(20));
      fact->column(1).AppendInt64(1998 + rng.NextBelow(5));
      fact->column(2).AppendFloat64(rng.NextDoubleIn(1.0, 100.0));
    }
    fact->FinishBulkAppend();

    Schema dim_schema;
    ASSERT_OK(dim_schema.AddField({"ik", DataType::kInt64}));
    ASSERT_OK(dim_schema.AddField({"cat", DataType::kString}));
    auto dim = std::make_unique<Table>(std::move(dim_schema));
    for (int i = 0; i < 20; ++i) {
      dim->column(0).AppendInt64(i + 1);
      dim->column(1).AppendString(i % 4 == 0 ? "Sports" : "Other");
    }
    dim->FinishBulkAppend();

    catalog_.PutTable("fact", std::move(fact));
    catalog_.PutTable("item_dim", std::move(dim));
    session_ = std::make_unique<SudafSession>(&catalog_);
  }

  Catalog catalog_;
  std::unique_ptr<SudafSession> session_;
};

TEST_F(ViewRewriteTest, MaterializedViewHoldsStatesPerGroup) {
  ASSERT_OK_AND_ASSIGN(
      AggregateView view,
      MaterializeAggregateView(
          session_.get(), "v1",
          "SELECT item, year, count(), sum(price), sum(price^2) "
          "FROM fact GROUP BY item, year"));
  EXPECT_EQ(view.num_key_columns, 2);
  EXPECT_EQ(view.states.size(), 3u);
  EXPECT_GT(view.data->num_rows(), 0);
  EXPECT_EQ(view.data->num_columns(), 5);
}

TEST_F(ViewRewriteTest, RollupMatchesDirectExecution) {
  // The paper's RQ3' scenario: coarser grouping + extra dimension join +
  // extra filters answered from the view only.
  ASSERT_OK_AND_ASSIGN(
      AggregateView view,
      MaterializeAggregateView(
          session_.get(), "v1",
          "SELECT item, year, count(), sum(price), sum(price^2) "
          "FROM fact GROUP BY item, year"));
  const std::string q3 =
      "SELECT year, qm(price), stddev(price) FROM fact, item_dim "
      "WHERE item = ik AND cat = 'Sports' AND year >= 2000 "
      "GROUP BY year ORDER BY year";
  ASSERT_OK_AND_ASSIGN(auto direct,
                       session_->Execute(q3, ExecMode::kSudafNoShare));
  ASSERT_OK_AND_ASSIGN(auto via_view,
                       ExecuteWithView(session_.get(), view, q3));
  ASSERT_EQ(direct->num_rows(), via_view->num_rows());
  for (int64_t r = 0; r < direct->num_rows(); ++r) {
    for (int c = 0; c < direct->num_columns(); ++c) {
      ExpectClose(direct->column(c).GetNumeric(r),
                  via_view->column(c).GetNumeric(r), 1e-9);
    }
  }
}

TEST_F(ViewRewriteTest, RollupAppliesRAfterViewSideMerge) {
  // The query wants Σ 4·price² — shareable from the view's Σ price² with
  // r(x) = 4x, applied after rollup (r commutes with ⊕).
  ASSERT_OK_AND_ASSIGN(
      AggregateView view,
      MaterializeAggregateView(session_.get(), "v1",
                               "SELECT year, sum(price^2) FROM fact "
                               "GROUP BY year"));
  const std::string q = "SELECT year, sum(4*price^2) FROM fact "
                        "GROUP BY year ORDER BY year";
  ASSERT_OK_AND_ASSIGN(auto direct,
                       session_->Execute(q, ExecMode::kSudafNoShare));
  ASSERT_OK_AND_ASSIGN(auto via_view,
                       ExecuteWithView(session_.get(), view, q));
  for (int64_t r = 0; r < direct->num_rows(); ++r) {
    ExpectClose(direct->column(1).GetNumeric(r),
                via_view->column(1).GetNumeric(r), 1e-9);
  }
}

TEST_F(ViewRewriteTest, CrossOpRollup) {
  // View materializes Σ ln(price); the query's gm = e^(Σln/n) needs Σ ln
  // and count, both rolled up from the view.
  ASSERT_OK_AND_ASSIGN(
      AggregateView view,
      MaterializeAggregateView(
          session_.get(), "v1",
          "SELECT item, year, count(), sum(ln(price)) FROM fact "
          "GROUP BY item, year"));
  const std::string q =
      "SELECT year, gm(price) FROM fact GROUP BY year ORDER BY year";
  ASSERT_OK_AND_ASSIGN(auto direct,
                       session_->Execute(q, ExecMode::kSudafNoShare));
  ASSERT_OK_AND_ASSIGN(auto via_view,
                       ExecuteWithView(session_.get(), view, q));
  for (int64_t r = 0; r < direct->num_rows(); ++r) {
    ExpectClose(direct->column(1).GetNumeric(r),
                via_view->column(1).GetNumeric(r), 1e-8);
  }
}

TEST_F(ViewRewriteTest, RejectsCoarserView) {
  // View grouped by year only cannot answer a per-item query.
  ASSERT_OK_AND_ASSIGN(
      AggregateView view,
      MaterializeAggregateView(session_.get(), "v1",
                               "SELECT year, sum(price) FROM fact "
                               "GROUP BY year"));
  auto result = ExecuteWithView(
      session_.get(), view,
      "SELECT item, sum(price) FROM fact GROUP BY item");
  EXPECT_FALSE(result.ok());
}

TEST_F(ViewRewriteTest, RejectsMissingViewPredicate) {
  // The view filters year >= 2000 but the query does not: the view is too
  // narrow.
  ASSERT_OK_AND_ASSIGN(
      AggregateView view,
      MaterializeAggregateView(session_.get(), "v1",
                               "SELECT year, sum(price) FROM fact "
                               "WHERE year >= 2000 GROUP BY year"));
  auto result = ExecuteWithView(
      session_.get(), view,
      "SELECT year, sum(price) FROM fact GROUP BY year");
  EXPECT_FALSE(result.ok());
}

TEST_F(ViewRewriteTest, RejectsUnshareableStates) {
  // theta1 results (final values) are useless for qm/stddev — the VQ1
  // observation of Section 2. A view of final UDAF values cannot serve
  // states it does not share.
  ASSERT_OK_AND_ASSIGN(
      AggregateView view,
      MaterializeAggregateView(session_.get(), "v1",
                               "SELECT year, sum(price) FROM fact "
                               "GROUP BY year"));
  auto result = ExecuteWithView(
      session_.get(), view,
      "SELECT year, qm(price) FROM fact GROUP BY year");
  EXPECT_FALSE(result.ok());  // Σprice² is not computable from Σprice
}

}  // namespace
}  // namespace sudaf

// Tests for sudaf/cache: data signatures and the state cache.

#include <cmath>
#include <limits>

#include "gtest/gtest.h"
#include "sudaf/cache.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

std::string SignatureOf(const std::string& sql) {
  auto stmt = ParseSelect(sql);
  SUDAF_CHECK_MSG(stmt.ok(), stmt.status().ToString());
  return DataSignature(**stmt);
}

// The cache API takes explicit epoch pairs everywhere (the old `epoch = 0`
// defaults let call sites silently probe with "no epoch"); these helpers
// keep the epoch-agnostic tests below terse.
StateCache::GroupSetPtr FindSet(StateCache& cache, const std::string& sig,
                                CatalogEpochs epochs = {}) {
  return cache.Find(sig, epochs, /*can_refresh=*/false).set;
}

StateCache::GroupSetPtr Create(StateCache& cache, const std::string& sig,
                               const Table& keys, int32_t num_groups,
                               CatalogEpochs epochs = {}) {
  return cache.GetOrCreate(sig, keys, num_groups, epochs,
                           /*covered_rows=*/-1);
}

TEST(DataSignatureTest, IndependentOfSelectList) {
  EXPECT_EQ(SignatureOf("SELECT qm(x) FROM t WHERE a = 1 GROUP BY g"),
            SignatureOf("SELECT stddev(x) FROM t WHERE a = 1 GROUP BY g"));
}

TEST(DataSignatureTest, CanonicalizesTableAndConjunctOrder) {
  EXPECT_EQ(
      SignatureOf("SELECT sum(x) FROM a, b WHERE k1 = k2 AND c = 1"),
      SignatureOf("SELECT sum(x) FROM b, a WHERE c = 1 AND k1 = k2"));
}

TEST(DataSignatureTest, DistinguishesPredicates) {
  EXPECT_NE(SignatureOf("SELECT sum(x) FROM t WHERE a = 1"),
            SignatureOf("SELECT sum(x) FROM t WHERE a = 2"));
  EXPECT_NE(SignatureOf("SELECT sum(x) FROM t"),
            SignatureOf("SELECT sum(x) FROM t WHERE a = 1"));
}

TEST(DataSignatureTest, DistinguishesGrouping) {
  EXPECT_NE(SignatureOf("SELECT g, sum(x) FROM t GROUP BY g"),
            SignatureOf("SELECT sum(x) FROM t"));
}

TEST(StateCacheTest, FindMissesThenHits) {
  StateCache cache;
  EXPECT_EQ(FindSet(cache, "sig"), nullptr);
  auto keys = testing_util::MakeXyTable({1, 2}, {0, 0}, {0, 0});
  StateCache::GroupSetPtr set = Create(cache, "sig", *keys, 2);
  ASSERT_NE(set, nullptr);
  EXPECT_EQ(FindSet(cache, "sig"), set);
  EXPECT_EQ(cache.num_group_sets(), 1);
}

TEST(StateCacheTest, EntriesAndBytes) {
  StateCache cache;
  auto keys = testing_util::MakeXyTable({1}, {0}, {0});
  StateCache::GroupSetPtr set = Create(cache, "sig", *keys, 1);
  set->entries["sum_pow|x|1"] = StateCache::Entry{{1.0}, {}};
  set->entries["logclass|x"] = StateCache::Entry{{0.5}, {1.0}};
  EXPECT_EQ(cache.num_entries(), 2);
  EXPECT_GT(cache.ApproxBytes(), 0);
  cache.Clear();
  EXPECT_EQ(cache.num_group_sets(), 0);
}

TEST(StateCacheTest, StaleGroupCountRecreates) {
  StateCache cache;
  auto keys2 = testing_util::MakeXyTable({1, 2}, {0, 0}, {0, 0});
  StateCache::GroupSetPtr set = Create(cache, "sig", *keys2, 2);
  set->entries["count"] = StateCache::Entry{{2.0, 3.0}, {}};
  auto keys3 = testing_util::MakeXyTable({1, 2, 3}, {0, 0, 0}, {0, 0, 0});
  StateCache::GroupSetPtr fresh = Create(cache, "sig", *keys3, 3);
  EXPECT_TRUE(fresh->entries.empty());
  EXPECT_EQ(fresh->num_groups, 3);
  // The discard is no longer silent: it is counted, and the old set is
  // really gone (a re-probe with the original count recreates again).
  EXPECT_EQ(cache.counters().stale_discards, 1);
  StateCache::GroupSetPtr back = Create(cache, "sig", *keys2, 2);
  EXPECT_TRUE(back->entries.empty());
  EXPECT_EQ(cache.counters().stale_discards, 2);
  EXPECT_EQ(cache.counters().epoch_invalidations, 0);
}

// Regression for the `epoch = 0` default-argument bug: a probe whose
// epochs disagree with the cached stamp must ALWAYS discard the set, in
// every combination of rewrite/append drift and can_refresh. The old
// defaulted API let call sites probe with "no epoch" and be served stale
// state silently.
TEST(StateCacheTest, StaleEpochProbeAlwaysDiscards) {
  auto keys = testing_util::MakeXyTable({1, 2}, {0, 0}, {0, 0});
  struct Case {
    CatalogEpochs stored, probed;
    bool can_refresh;
    bool refreshable;  // expected handoff instead of a discard
  };
  const Case cases[] = {
      // Rewrite drift: hard invalidation regardless of can_refresh.
      {{1, 10}, {2, 10}, false, false},
      {{1, 10}, {2, 10}, true, false},
      {{1, 10}, {2, 11}, true, false},
      // Append-only drift: discarded without can_refresh, handed off with.
      {{1, 10}, {1, 11}, false, false},
      {{1, 10}, {1, 11}, true, true},
  };
  for (const Case& c : cases) {
    StateCache cache;
    StateCache::GroupSetPtr set =
        cache.GetOrCreate("sig", *keys, 2, c.stored, /*covered_rows=*/2);
    set->entries["count"] = StateCache::Entry{{2.0, 3.0}, {}};
    ASSERT_EQ(cache.Find("sig", c.stored, false).set, set);

    StateCache::FindResult r = cache.Find("sig", c.probed, c.can_refresh);
    EXPECT_EQ(r.set, nullptr);  // a mismatched set is NEVER served as-is
    if (c.refreshable) {
      EXPECT_EQ(r.refreshable, set);
      EXPECT_EQ(cache.num_group_sets(), 1);  // still mapped, awaiting commit
      EXPECT_EQ(cache.counters().full_invalidations, 0);
    } else {
      EXPECT_EQ(r.refreshable, nullptr);
      EXPECT_EQ(cache.num_group_sets(), 0);
      EXPECT_EQ(cache.counters().epoch_invalidations, 1);
      EXPECT_EQ(cache.counters().full_invalidations, 1);
    }
  }
}

TEST(StateCacheTest, EpochMismatchInvalidatesOnProbe) {
  StateCache cache;
  auto keys = testing_util::MakeXyTable({1, 2}, {0, 0}, {0, 0});
  StateCache::GroupSetPtr set = Create(cache, "sig", *keys, 2, {1, 1});
  set->entries["count"] = StateCache::Entry{{2.0, 3.0}, {}};
  EXPECT_EQ(FindSet(cache, "sig", {1, 1}), set);

  // Probe under a newer rewrite epoch: the set is discarded, not served.
  EXPECT_EQ(FindSet(cache, "sig", {2, 1}), nullptr);
  EXPECT_EQ(cache.num_group_sets(), 0);
  EXPECT_EQ(cache.counters().epoch_invalidations, 1);

  // GetOrCreate under a newer epoch likewise recreates.
  StateCache::GroupSetPtr recreated = Create(cache, "sig", *keys, 2, {3, 1});
  recreated->entries["count"] = StateCache::Entry{{2.0, 3.0}, {}};
  StateCache::GroupSetPtr again = Create(cache, "sig", *keys, 2, {4, 1});
  EXPECT_TRUE(again->entries.empty());
  EXPECT_EQ(cache.counters().epoch_invalidations, 2);
}

// A refreshable handoff resolves exactly one probe at CommitRefresh: the
// accounting identity set_hits + delta_refreshes + full_invalidations ==
// probes must hold before, during, and after.
TEST(StateCacheTest, CommitRefreshFoldsDeltaAndKeepsAccounting) {
  StateCache cache;
  auto keys = testing_util::MakeXyTable({1, 2}, {0, 0}, {0, 0});
  StateCache::GroupSetPtr set =
      cache.GetOrCreate("sig", *keys, 2, {5, 10}, /*covered_rows=*/100);
  set->entries["count"] = StateCache::Entry{{2.0, 3.0}, {}};
  ASSERT_NE(cache.Find("sig", {5, 10}, false).set, nullptr);  // 1 hit

  StateCache::FindResult r = cache.Find("sig", {5, 11}, /*can_refresh=*/true);
  ASSERT_EQ(r.set, nullptr);
  ASSERT_EQ(r.refreshable, set);
  // The pending handoff has not been counted yet.
  EXPECT_EQ(cache.counters().probes, 1);

  auto keys3 = testing_util::MakeXyTable({1, 2, 3}, {0, 0, 0}, {0, 0, 0});
  std::vector<std::pair<std::string, StateCache::Entry>> entries;
  entries.emplace_back("count", StateCache::Entry{{2.0, 5.0, 1.0}, {}});
  StateCache::GroupSetPtr fresh = cache.CommitRefresh(
      set, *keys3, 3, {5, 11}, /*covered_rows=*/130, entries,
      /*delta_rows=*/30);
  ASSERT_NE(fresh, nullptr);
  EXPECT_NE(fresh, set);
  EXPECT_EQ(fresh->num_groups, 3);
  EXPECT_EQ(fresh->covered_rows, 130);
  ASSERT_EQ(fresh->entries.count("count"), 1u);
  EXPECT_EQ(fresh->entries["count"].main[1], 5.0);

  const StateCache::Counters c = cache.counters();
  EXPECT_EQ(c.probes, 2);
  EXPECT_EQ(c.set_hits, 1);
  EXPECT_EQ(c.delta_refreshes, 1);
  EXPECT_EQ(c.delta_rows_scanned, 30);
  EXPECT_EQ(c.full_invalidations, 0);
  EXPECT_EQ(c.set_hits + c.delta_refreshes + c.full_invalidations, c.probes);

  // The refreshed set serves the next probe under the new epochs.
  EXPECT_EQ(cache.Find("sig", {5, 11}, false).set, fresh);
}

// A CommitRefresh that loses the race (the mapped set changed since the
// probe) must return null and leave the newer set untouched.
TEST(StateCacheTest, CommitRefreshDetectsRace) {
  StateCache cache;
  auto keys = testing_util::MakeXyTable({1}, {0}, {0});
  StateCache::GroupSetPtr old_set =
      cache.GetOrCreate("sig", *keys, 1, {1, 1}, /*covered_rows=*/10);
  StateCache::FindResult r = cache.Find("sig", {1, 2}, true);
  ASSERT_EQ(r.refreshable, old_set);

  // Another query recreates the set before our refresh commits.
  StateCache::GroupSetPtr newer =
      cache.GetOrCreate("sig", *keys, 1, {1, 3}, /*covered_rows=*/30);
  ASSERT_NE(newer, old_set);

  std::vector<std::pair<std::string, StateCache::Entry>> entries;
  entries.emplace_back("count", StateCache::Entry{{1.0}, {}});
  EXPECT_EQ(cache.CommitRefresh(old_set, *keys, 1, {1, 2}, 20, entries, 10),
            nullptr);
  EXPECT_EQ(cache.Find("sig", {1, 3}, false).set, newer);
}

TEST(StateCacheTest, EntryPoisonDetection) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(EntryIsPoisoned(StateCache::Entry{{1.0, -2.0}, {1.0}}));
  EXPECT_FALSE(EntryIsPoisoned(StateCache::Entry{{}, {}}));
  EXPECT_TRUE(EntryIsPoisoned(StateCache::Entry{{1.0, kInf}, {}}));
  EXPECT_TRUE(EntryIsPoisoned(StateCache::Entry{{1.0}, {-kInf}}));
  EXPECT_TRUE(EntryIsPoisoned(StateCache::Entry{{std::nan("")}, {}}));
}

TEST(StateCacheTest, GroupKeysAreCopied) {
  StateCache cache;
  auto keys = testing_util::MakeXyTable({7}, {0}, {0});
  StateCache::GroupSetPtr set = Create(cache, "sig", *keys, 1);
  keys.reset();  // cache must not dangle
  EXPECT_EQ(set->group_keys->column(0).GetInt64(0), 7);
}

TEST(TablesFromDataSignatureTest, RecoversTheSortedTableList) {
  auto stmt = ParseSelect("SELECT sum(x) FROM b, a WHERE k1 = k2");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(TablesFromDataSignature(DataSignature(**stmt)),
            (std::vector<std::string>{"a", "b"}));
  auto single = ParseSelect("SELECT sum(x) FROM t GROUP BY g");
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(TablesFromDataSignature(DataSignature(**single)),
            (std::vector<std::string>{"t"}));
  // Degenerate inputs parse to "no tables", never crash.
  EXPECT_TRUE(TablesFromDataSignature("").empty());
  EXPECT_TRUE(TablesFromDataSignature("T:;W:;G:").empty());
  EXPECT_TRUE(TablesFromDataSignature("X:bogus").empty());
}

// ---------------------------------------------------------------------------
// Byte accounting and the cost-aware eviction policy
// ---------------------------------------------------------------------------

// Pins the ApproxBytes formula: the budget must charge the group-keys
// table and the fixed map-node overheads, not just the channel doubles —
// otherwise a "bounded" cache can exceed its budget several-fold on
// key-heavy workloads.
TEST(StateCacheBytesTest, ApproxBytesFormulaRegression) {
  StateCache cache;
  auto keys = testing_util::MakeXyTable({1, 2, 3}, {0, 0, 0}, {0, 0, 0});
  const std::string sig = "bytes-regression-sig";
  StateCache::GroupSetPtr set = Create(cache, sig, *keys, 3);

  int64_t expected = StateCache::kPerSetOverhead +
                     static_cast<int64_t>(sig.size()) +
                     set->group_keys->ApproxBytes();
  EXPECT_EQ(cache.ApproxBytes(), expected);
  EXPECT_GT(set->group_keys->ApproxBytes(), 0);  // the table is charged

  StateCache::Entry e1{{1.0, 2.0, 3.0}, {}};
  StateCache::Entry e2{{1.0, 2.0, 3.0}, {1.0, -1.0, 1.0}};
  ASSERT_TRUE(cache.InsertEntry(set.get(), "k1", e1));
  ASSERT_TRUE(cache.InsertEntry(set.get(), "key2", e2));
  expected += StateCache::kPerEntryOverhead + 2 + 3 * 8;      // "k1", main
  expected += StateCache::kPerEntryOverhead + 4 + (3 + 3) * 8;  // "key2"
  EXPECT_EQ(cache.ApproxBytes(), expected);
  EXPECT_EQ(StateCache::SetBytes(*set), expected);

  // Replacing an entry re-charges, it does not double-count.
  StateCache::Entry shorter{{1.0}, {}};
  ASSERT_TRUE(cache.InsertEntry(set.get(), "k1", shorter));
  expected -= 2 * 8;
  EXPECT_EQ(cache.ApproxBytes(), expected);
}

TEST(StateCacheEvictionTest, ColdUnhitSetsAreEvictedFirst) {
  StateCache cache;
  auto keys = testing_util::MakeXyTable({1}, {0}, {0});
  StateCache::GroupSetPtr a = Create(cache, "sig-a", *keys, 1);
  StateCache::GroupSetPtr b = Create(cache, "sig-b", *keys, 1);
  StateCache::Entry ea{{1.0}, {}}, eb{{2.0}, {}};
  cache.InsertEntry(a.get(), "k", ea);
  cache.InsertEntry(b.get(), "k", eb);
  // Make `b` hot: repeated valid probes raise its hits and recency.
  for (int i = 0; i < 5; ++i) ASSERT_NE(FindSet(cache, "sig-b"), nullptr);

  // Now constrain the budget so only one of the two fits: the cold,
  // never-probed `a` must be the victim.
  CachePolicy policy;
  policy.max_bytes = cache.ApproxBytes() - 1;
  cache.set_policy(policy);
  cache.EnforceBudget();
  EXPECT_EQ(FindSet(cache, "sig-a"), nullptr);
  EXPECT_NE(FindSet(cache, "sig-b"), nullptr);
  EXPECT_EQ(cache.counters().evictions, 1);
  EXPECT_GT(cache.counters().bytes_evicted, 0);
  EXPECT_LE(cache.ApproxBytes(), policy.max_bytes);
}

TEST(StateCacheEvictionTest, LargerOfEquallyColdSetsGoesFirst) {
  StateCache cache;
  auto keys = testing_util::MakeXyTable({1}, {0}, {0});
  StateCache::GroupSetPtr small = Create(cache, "sig-small", *keys, 1);
  StateCache::GroupSetPtr big = Create(cache, "sig-big", *keys, 1);
  StateCache::Entry es{{1.0}, {}};
  StateCache::Entry ebig{std::vector<double>(2048, 1.0), {}};
  cache.InsertEntry(small.get(), "k", es);
  cache.InsertEntry(big.get(), "k", ebig);

  CachePolicy policy;
  policy.max_bytes = cache.ApproxBytes() - 1;
  cache.set_policy(policy);
  cache.EnforceBudget();
  // score = hits / (age × bytes): equal hits and near-equal age, so the
  // big set has the lower score and is evicted.
  EXPECT_EQ(FindSet(cache, "sig-big"), nullptr);
  EXPECT_NE(FindSet(cache, "sig-small"), nullptr);
}

TEST(StateCacheEvictionTest, InsertDeclineLeavesEntryUntouched) {
  StateCache cache;
  auto keys = testing_util::MakeXyTable({1}, {0}, {0});
  StateCache::GroupSetPtr set = Create(cache, "sig", *keys, 1);
  CachePolicy policy;
  policy.max_bytes = cache.ApproxBytes() + 64;  // set fits, big entries don't
  cache.set_policy(policy);

  StateCache::Entry huge{std::vector<double>(1024, 7.0), {}};
  EXPECT_FALSE(cache.InsertEntry(set.get(), "huge", huge));
  // The caller keeps the state query-local, so it must still be intact.
  ASSERT_EQ(huge.main.size(), 1024u);
  EXPECT_EQ(huge.main[17], 7.0);
  EXPECT_EQ(cache.num_entries(), 0);
  EXPECT_LE(cache.ApproxBytes(), policy.max_bytes);
}

TEST(StateCacheEvictionTest, OversizedSetStaysQueryLocal) {
  StateCache cache;
  CachePolicy policy;
  policy.max_bytes = 64;  // smaller than any bare group set
  cache.set_policy(policy);
  auto keys = testing_util::MakeXyTable({1, 2}, {0, 0}, {0, 0});

  StateCache::GroupSetPtr set = Create(cache, "sig-over", *keys, 2);
  ASSERT_NE(set, nullptr);  // the current query can still proceed
  // ...but the set is uncached: invisible to Find, uncounted, unbudgeted.
  EXPECT_EQ(FindSet(cache, "sig-over"), nullptr);
  EXPECT_EQ(cache.num_group_sets(), 0);
  EXPECT_EQ(cache.ApproxBytes(), 0);

  StateCache::Entry entry{{1.0, 2.0}, {}};
  EXPECT_TRUE(cache.InsertEntry(set.get(), "k", entry));
  EXPECT_EQ(cache.num_entries(), 0);  // still uncounted

  // Each overflow is independent and query-local; the first set stays
  // alive for as long as its query holds the reference.
  StateCache::GroupSetPtr next = Create(cache, "sig-over2", *keys, 2);
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(cache.num_group_sets(), 0);
  EXPECT_TRUE(set->uncached);
  EXPECT_EQ(set->entries.count("k"), 1u);
}

}  // namespace
}  // namespace sudaf

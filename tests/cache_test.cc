// Tests for sudaf/cache: data signatures and the state cache.

#include <cmath>
#include <limits>

#include "gtest/gtest.h"
#include "sudaf/cache.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

std::string SignatureOf(const std::string& sql) {
  auto stmt = ParseSelect(sql);
  SUDAF_CHECK_MSG(stmt.ok(), stmt.status().ToString());
  return DataSignature(**stmt);
}

TEST(DataSignatureTest, IndependentOfSelectList) {
  EXPECT_EQ(SignatureOf("SELECT qm(x) FROM t WHERE a = 1 GROUP BY g"),
            SignatureOf("SELECT stddev(x) FROM t WHERE a = 1 GROUP BY g"));
}

TEST(DataSignatureTest, CanonicalizesTableAndConjunctOrder) {
  EXPECT_EQ(
      SignatureOf("SELECT sum(x) FROM a, b WHERE k1 = k2 AND c = 1"),
      SignatureOf("SELECT sum(x) FROM b, a WHERE c = 1 AND k1 = k2"));
}

TEST(DataSignatureTest, DistinguishesPredicates) {
  EXPECT_NE(SignatureOf("SELECT sum(x) FROM t WHERE a = 1"),
            SignatureOf("SELECT sum(x) FROM t WHERE a = 2"));
  EXPECT_NE(SignatureOf("SELECT sum(x) FROM t"),
            SignatureOf("SELECT sum(x) FROM t WHERE a = 1"));
}

TEST(DataSignatureTest, DistinguishesGrouping) {
  EXPECT_NE(SignatureOf("SELECT g, sum(x) FROM t GROUP BY g"),
            SignatureOf("SELECT sum(x) FROM t"));
}

TEST(StateCacheTest, FindMissesThenHits) {
  StateCache cache;
  EXPECT_EQ(cache.Find("sig"), nullptr);
  auto keys = testing_util::MakeXyTable({1, 2}, {0, 0}, {0, 0});
  StateCache::GroupSetPtr set = cache.GetOrCreate("sig", *keys, 2);
  ASSERT_NE(set, nullptr);
  EXPECT_EQ(cache.Find("sig"), set);
  EXPECT_EQ(cache.num_group_sets(), 1);
}

TEST(StateCacheTest, EntriesAndBytes) {
  StateCache cache;
  auto keys = testing_util::MakeXyTable({1}, {0}, {0});
  StateCache::GroupSetPtr set = cache.GetOrCreate("sig", *keys, 1);
  set->entries["sum_pow|x|1"] = StateCache::Entry{{1.0}, {}};
  set->entries["logclass|x"] = StateCache::Entry{{0.5}, {1.0}};
  EXPECT_EQ(cache.num_entries(), 2);
  EXPECT_GT(cache.ApproxBytes(), 0);
  cache.Clear();
  EXPECT_EQ(cache.num_group_sets(), 0);
}

TEST(StateCacheTest, StaleGroupCountRecreates) {
  StateCache cache;
  auto keys2 = testing_util::MakeXyTable({1, 2}, {0, 0}, {0, 0});
  StateCache::GroupSetPtr set = cache.GetOrCreate("sig", *keys2, 2);
  set->entries["count"] = StateCache::Entry{{2.0, 3.0}, {}};
  auto keys3 = testing_util::MakeXyTable({1, 2, 3}, {0, 0, 0}, {0, 0, 0});
  StateCache::GroupSetPtr fresh = cache.GetOrCreate("sig", *keys3, 3);
  EXPECT_TRUE(fresh->entries.empty());
  EXPECT_EQ(fresh->num_groups, 3);
  // The discard is no longer silent: it is counted, and the old set is
  // really gone (a re-probe with the original count recreates again).
  EXPECT_EQ(cache.counters().stale_discards, 1);
  StateCache::GroupSetPtr back = cache.GetOrCreate("sig", *keys2, 2);
  EXPECT_TRUE(back->entries.empty());
  EXPECT_EQ(cache.counters().stale_discards, 2);
  EXPECT_EQ(cache.counters().epoch_invalidations, 0);
}

TEST(StateCacheTest, EpochMismatchInvalidatesOnProbe) {
  StateCache cache;
  auto keys = testing_util::MakeXyTable({1, 2}, {0, 0}, {0, 0});
  StateCache::GroupSetPtr set = cache.GetOrCreate("sig", *keys, 2, /*epoch=*/1);
  set->entries["count"] = StateCache::Entry{{2.0, 3.0}, {}};
  EXPECT_EQ(cache.Find("sig", 1), set);

  // Probe under a newer epoch: the set is discarded, not served.
  EXPECT_EQ(cache.Find("sig", 2), nullptr);
  EXPECT_EQ(cache.num_group_sets(), 0);
  EXPECT_EQ(cache.counters().epoch_invalidations, 1);

  // GetOrCreate under a newer epoch likewise recreates.
  StateCache::GroupSetPtr recreated = cache.GetOrCreate("sig", *keys, 2, 3);
  recreated->entries["count"] = StateCache::Entry{{2.0, 3.0}, {}};
  StateCache::GroupSetPtr again = cache.GetOrCreate("sig", *keys, 2, 4);
  EXPECT_TRUE(again->entries.empty());
  EXPECT_EQ(cache.counters().epoch_invalidations, 2);
}

TEST(StateCacheTest, EntryPoisonDetection) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(EntryIsPoisoned(StateCache::Entry{{1.0, -2.0}, {1.0}}));
  EXPECT_FALSE(EntryIsPoisoned(StateCache::Entry{{}, {}}));
  EXPECT_TRUE(EntryIsPoisoned(StateCache::Entry{{1.0, kInf}, {}}));
  EXPECT_TRUE(EntryIsPoisoned(StateCache::Entry{{1.0}, {-kInf}}));
  EXPECT_TRUE(EntryIsPoisoned(StateCache::Entry{{std::nan("")}, {}}));
}

TEST(StateCacheTest, GroupKeysAreCopied) {
  StateCache cache;
  auto keys = testing_util::MakeXyTable({7}, {0}, {0});
  StateCache::GroupSetPtr set = cache.GetOrCreate("sig", *keys, 1);
  keys.reset();  // cache must not dangle
  EXPECT_EQ(set->group_keys->column(0).GetInt64(0), 7);
}

TEST(TablesFromDataSignatureTest, RecoversTheSortedTableList) {
  auto stmt = ParseSelect("SELECT sum(x) FROM b, a WHERE k1 = k2");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(TablesFromDataSignature(DataSignature(**stmt)),
            (std::vector<std::string>{"a", "b"}));
  auto single = ParseSelect("SELECT sum(x) FROM t GROUP BY g");
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(TablesFromDataSignature(DataSignature(**single)),
            (std::vector<std::string>{"t"}));
  // Degenerate inputs parse to "no tables", never crash.
  EXPECT_TRUE(TablesFromDataSignature("").empty());
  EXPECT_TRUE(TablesFromDataSignature("T:;W:;G:").empty());
  EXPECT_TRUE(TablesFromDataSignature("X:bogus").empty());
}

// ---------------------------------------------------------------------------
// Byte accounting and the cost-aware eviction policy
// ---------------------------------------------------------------------------

// Pins the ApproxBytes formula: the budget must charge the group-keys
// table and the fixed map-node overheads, not just the channel doubles —
// otherwise a "bounded" cache can exceed its budget several-fold on
// key-heavy workloads.
TEST(StateCacheBytesTest, ApproxBytesFormulaRegression) {
  StateCache cache;
  auto keys = testing_util::MakeXyTable({1, 2, 3}, {0, 0, 0}, {0, 0, 0});
  const std::string sig = "bytes-regression-sig";
  StateCache::GroupSetPtr set = cache.GetOrCreate(sig, *keys, 3);

  int64_t expected = StateCache::kPerSetOverhead +
                     static_cast<int64_t>(sig.size()) +
                     set->group_keys->ApproxBytes();
  EXPECT_EQ(cache.ApproxBytes(), expected);
  EXPECT_GT(set->group_keys->ApproxBytes(), 0);  // the table is charged

  StateCache::Entry e1{{1.0, 2.0, 3.0}, {}};
  StateCache::Entry e2{{1.0, 2.0, 3.0}, {1.0, -1.0, 1.0}};
  ASSERT_TRUE(cache.InsertEntry(set.get(), "k1", e1));
  ASSERT_TRUE(cache.InsertEntry(set.get(), "key2", e2));
  expected += StateCache::kPerEntryOverhead + 2 + 3 * 8;      // "k1", main
  expected += StateCache::kPerEntryOverhead + 4 + (3 + 3) * 8;  // "key2"
  EXPECT_EQ(cache.ApproxBytes(), expected);
  EXPECT_EQ(StateCache::SetBytes(*set), expected);

  // Replacing an entry re-charges, it does not double-count.
  StateCache::Entry shorter{{1.0}, {}};
  ASSERT_TRUE(cache.InsertEntry(set.get(), "k1", shorter));
  expected -= 2 * 8;
  EXPECT_EQ(cache.ApproxBytes(), expected);
}

TEST(StateCacheEvictionTest, ColdUnhitSetsAreEvictedFirst) {
  StateCache cache;
  auto keys = testing_util::MakeXyTable({1}, {0}, {0});
  StateCache::GroupSetPtr a = cache.GetOrCreate("sig-a", *keys, 1);
  StateCache::GroupSetPtr b = cache.GetOrCreate("sig-b", *keys, 1);
  StateCache::Entry ea{{1.0}, {}}, eb{{2.0}, {}};
  cache.InsertEntry(a.get(), "k", ea);
  cache.InsertEntry(b.get(), "k", eb);
  // Make `b` hot: repeated valid probes raise its hits and recency.
  for (int i = 0; i < 5; ++i) ASSERT_NE(cache.Find("sig-b"), nullptr);

  // Now constrain the budget so only one of the two fits: the cold,
  // never-probed `a` must be the victim.
  CachePolicy policy;
  policy.max_bytes = cache.ApproxBytes() - 1;
  cache.set_policy(policy);
  cache.EnforceBudget();
  EXPECT_EQ(cache.Find("sig-a"), nullptr);
  EXPECT_NE(cache.Find("sig-b"), nullptr);
  EXPECT_EQ(cache.counters().evictions, 1);
  EXPECT_GT(cache.counters().bytes_evicted, 0);
  EXPECT_LE(cache.ApproxBytes(), policy.max_bytes);
}

TEST(StateCacheEvictionTest, LargerOfEquallyColdSetsGoesFirst) {
  StateCache cache;
  auto keys = testing_util::MakeXyTable({1}, {0}, {0});
  StateCache::GroupSetPtr small = cache.GetOrCreate("sig-small", *keys, 1);
  StateCache::GroupSetPtr big = cache.GetOrCreate("sig-big", *keys, 1);
  StateCache::Entry es{{1.0}, {}};
  StateCache::Entry ebig{std::vector<double>(2048, 1.0), {}};
  cache.InsertEntry(small.get(), "k", es);
  cache.InsertEntry(big.get(), "k", ebig);

  CachePolicy policy;
  policy.max_bytes = cache.ApproxBytes() - 1;
  cache.set_policy(policy);
  cache.EnforceBudget();
  // score = hits / (age × bytes): equal hits and near-equal age, so the
  // big set has the lower score and is evicted.
  EXPECT_EQ(cache.Find("sig-big"), nullptr);
  EXPECT_NE(cache.Find("sig-small"), nullptr);
}

TEST(StateCacheEvictionTest, InsertDeclineLeavesEntryUntouched) {
  StateCache cache;
  auto keys = testing_util::MakeXyTable({1}, {0}, {0});
  StateCache::GroupSetPtr set = cache.GetOrCreate("sig", *keys, 1);
  CachePolicy policy;
  policy.max_bytes = cache.ApproxBytes() + 64;  // set fits, big entries don't
  cache.set_policy(policy);

  StateCache::Entry huge{std::vector<double>(1024, 7.0), {}};
  EXPECT_FALSE(cache.InsertEntry(set.get(), "huge", huge));
  // The caller keeps the state query-local, so it must still be intact.
  ASSERT_EQ(huge.main.size(), 1024u);
  EXPECT_EQ(huge.main[17], 7.0);
  EXPECT_EQ(cache.num_entries(), 0);
  EXPECT_LE(cache.ApproxBytes(), policy.max_bytes);
}

TEST(StateCacheEvictionTest, OversizedSetStaysQueryLocal) {
  StateCache cache;
  CachePolicy policy;
  policy.max_bytes = 64;  // smaller than any bare group set
  cache.set_policy(policy);
  auto keys = testing_util::MakeXyTable({1, 2}, {0, 0}, {0, 0});

  StateCache::GroupSetPtr set = cache.GetOrCreate("sig-over", *keys, 2);
  ASSERT_NE(set, nullptr);  // the current query can still proceed
  // ...but the set is uncached: invisible to Find, uncounted, unbudgeted.
  EXPECT_EQ(cache.Find("sig-over"), nullptr);
  EXPECT_EQ(cache.num_group_sets(), 0);
  EXPECT_EQ(cache.ApproxBytes(), 0);

  StateCache::Entry entry{{1.0, 2.0}, {}};
  EXPECT_TRUE(cache.InsertEntry(set.get(), "k", entry));
  EXPECT_EQ(cache.num_entries(), 0);  // still uncounted

  // Each overflow is independent and query-local; the first set stays
  // alive for as long as its query holds the reference.
  StateCache::GroupSetPtr next = cache.GetOrCreate("sig-over2", *keys, 2);
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(cache.num_group_sets(), 0);
  EXPECT_TRUE(set->uncached);
  EXPECT_EQ(set->entries.count("k"), 1u);
}

}  // namespace
}  // namespace sudaf

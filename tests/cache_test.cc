// Tests for sudaf/cache: data signatures and the state cache.

#include <cmath>
#include <limits>

#include "gtest/gtest.h"
#include "sudaf/cache.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

std::string SignatureOf(const std::string& sql) {
  auto stmt = ParseSelect(sql);
  SUDAF_CHECK_MSG(stmt.ok(), stmt.status().ToString());
  return DataSignature(**stmt);
}

TEST(DataSignatureTest, IndependentOfSelectList) {
  EXPECT_EQ(SignatureOf("SELECT qm(x) FROM t WHERE a = 1 GROUP BY g"),
            SignatureOf("SELECT stddev(x) FROM t WHERE a = 1 GROUP BY g"));
}

TEST(DataSignatureTest, CanonicalizesTableAndConjunctOrder) {
  EXPECT_EQ(
      SignatureOf("SELECT sum(x) FROM a, b WHERE k1 = k2 AND c = 1"),
      SignatureOf("SELECT sum(x) FROM b, a WHERE c = 1 AND k1 = k2"));
}

TEST(DataSignatureTest, DistinguishesPredicates) {
  EXPECT_NE(SignatureOf("SELECT sum(x) FROM t WHERE a = 1"),
            SignatureOf("SELECT sum(x) FROM t WHERE a = 2"));
  EXPECT_NE(SignatureOf("SELECT sum(x) FROM t"),
            SignatureOf("SELECT sum(x) FROM t WHERE a = 1"));
}

TEST(DataSignatureTest, DistinguishesGrouping) {
  EXPECT_NE(SignatureOf("SELECT g, sum(x) FROM t GROUP BY g"),
            SignatureOf("SELECT sum(x) FROM t"));
}

TEST(StateCacheTest, FindMissesThenHits) {
  StateCache cache;
  EXPECT_EQ(cache.Find("sig"), nullptr);
  auto keys = testing_util::MakeXyTable({1, 2}, {0, 0}, {0, 0});
  StateCache::GroupSet* set = cache.GetOrCreate("sig", *keys, 2);
  ASSERT_NE(set, nullptr);
  EXPECT_EQ(cache.Find("sig"), set);
  EXPECT_EQ(cache.num_group_sets(), 1);
}

TEST(StateCacheTest, EntriesAndBytes) {
  StateCache cache;
  auto keys = testing_util::MakeXyTable({1}, {0}, {0});
  StateCache::GroupSet* set = cache.GetOrCreate("sig", *keys, 1);
  set->entries["sum_pow|x|1"] = StateCache::Entry{{1.0}, {}};
  set->entries["logclass|x"] = StateCache::Entry{{0.5}, {1.0}};
  EXPECT_EQ(cache.num_entries(), 2);
  EXPECT_GT(cache.ApproxBytes(), 0);
  cache.Clear();
  EXPECT_EQ(cache.num_group_sets(), 0);
}

TEST(StateCacheTest, StaleGroupCountRecreates) {
  StateCache cache;
  auto keys2 = testing_util::MakeXyTable({1, 2}, {0, 0}, {0, 0});
  StateCache::GroupSet* set = cache.GetOrCreate("sig", *keys2, 2);
  set->entries["count"] = StateCache::Entry{{2.0, 3.0}, {}};
  auto keys3 = testing_util::MakeXyTable({1, 2, 3}, {0, 0, 0}, {0, 0, 0});
  StateCache::GroupSet* fresh = cache.GetOrCreate("sig", *keys3, 3);
  EXPECT_TRUE(fresh->entries.empty());
  EXPECT_EQ(fresh->num_groups, 3);
  // The discard is no longer silent: it is counted, and the old set is
  // really gone (a re-probe with the original count recreates again).
  EXPECT_EQ(cache.counters().stale_discards, 1);
  StateCache::GroupSet* back = cache.GetOrCreate("sig", *keys2, 2);
  EXPECT_TRUE(back->entries.empty());
  EXPECT_EQ(cache.counters().stale_discards, 2);
  EXPECT_EQ(cache.counters().epoch_invalidations, 0);
}

TEST(StateCacheTest, EpochMismatchInvalidatesOnProbe) {
  StateCache cache;
  auto keys = testing_util::MakeXyTable({1, 2}, {0, 0}, {0, 0});
  StateCache::GroupSet* set = cache.GetOrCreate("sig", *keys, 2, /*epoch=*/1);
  set->entries["count"] = StateCache::Entry{{2.0, 3.0}, {}};
  EXPECT_EQ(cache.Find("sig", 1), set);

  // Probe under a newer epoch: the set is discarded, not served.
  EXPECT_EQ(cache.Find("sig", 2), nullptr);
  EXPECT_EQ(cache.num_group_sets(), 0);
  EXPECT_EQ(cache.counters().epoch_invalidations, 1);

  // GetOrCreate under a newer epoch likewise recreates.
  StateCache::GroupSet* recreated = cache.GetOrCreate("sig", *keys, 2, 3);
  recreated->entries["count"] = StateCache::Entry{{2.0, 3.0}, {}};
  StateCache::GroupSet* again = cache.GetOrCreate("sig", *keys, 2, 4);
  EXPECT_TRUE(again->entries.empty());
  EXPECT_EQ(cache.counters().epoch_invalidations, 2);
}

TEST(StateCacheTest, EntryPoisonDetection) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(EntryIsPoisoned(StateCache::Entry{{1.0, -2.0}, {1.0}}));
  EXPECT_FALSE(EntryIsPoisoned(StateCache::Entry{{}, {}}));
  EXPECT_TRUE(EntryIsPoisoned(StateCache::Entry{{1.0, kInf}, {}}));
  EXPECT_TRUE(EntryIsPoisoned(StateCache::Entry{{1.0}, {-kInf}}));
  EXPECT_TRUE(EntryIsPoisoned(StateCache::Entry{{std::nan("")}, {}}));
}

TEST(StateCacheTest, GroupKeysAreCopied) {
  StateCache cache;
  auto keys = testing_util::MakeXyTable({7}, {0}, {0});
  StateCache::GroupSet* set = cache.GetOrCreate("sig", *keys, 1);
  keys.reset();  // cache must not dangle
  EXPECT_EQ(set->group_keys->column(0).GetInt64(0), 7);
}

}  // namespace
}  // namespace sudaf

// Exhaustive pairwise sharing matrix over a hand-analyzed catalog of
// aggregation states. Every ordered pair's expected decision was derived
// manually from Theorem 4.1; the implementation must reproduce the full
// matrix, and every positive cell must verify numerically on random data.
//
// This pins down the decision procedure far more tightly than spot checks:
// a regression in the shape algebra, the case split, or the evenness
// analysis flips at least one cell.

#include <cmath>

#include "common/rng.h"
#include "expr/evaluator.h"
#include "expr/parser.h"
#include "gtest/gtest.h"
#include "sudaf/sharing.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

struct CatalogEntry {
  AggOp op;
  const char* input;  // null for count
};

// The state catalog. Indices matter: the matrix below is ordered the same.
const CatalogEntry kCatalog[] = {
    /* 0 */ {AggOp::kSum, "x"},         // Σx
    /* 1 */ {AggOp::kSum, "3*x"},       // Σ3x
    /* 2 */ {AggOp::kSum, "x^2"},       // Σx²
    /* 3 */ {AggOp::kSum, "x^3"},       // Σx³
    /* 4 */ {AggOp::kSum, "ln(x)"},     // Σln x
    /* 5 */ {AggOp::kSum, "2*ln(x)"},   // Σ2ln x (= Σln x²)
    /* 6 */ {AggOp::kSum, "exp(x)"},    // Σeˣ
    /* 7 */ {AggOp::kProd, "x"},        // Πx
    /* 8 */ {AggOp::kProd, "x^2"},      // Πx²
    /* 9 */ {AggOp::kProd, "exp(x)"},   // Πeˣ
    /* 10 */ {AggOp::kCount, nullptr},  // count
    /* 11 */ {AggOp::kMin, "x"},        // min x
};
constexpr int kN = 12;

// Expected share(i, j) — does row i compute from column j?
// Derivations (Theorem 4.1):
//   Σx ~ Σ3x (2.1, both ways); Σx ~ Πeˣ (2.2/2.3: Πeˣ = e^Σx);
//   Σln x ~ Σ2ln x (2.1); Σln x ~ Πx via 2.2. Σln x from Πx² is refused
//   by case 1 (ln is injective, x² is even — over M(Q) the sign context is
//   lost), as is Πx from Πx².
//   Πx² from Πx: |Πx|² (2.4 i). Πx ~ Σln x (2.3). Πx² ~ Σln x (2.3 with
//   r = e^{2v}); Πx² ~ Σ2ln x (e^v). Πeˣ ~ Σx (2.3) and Σ3x (c = 1/3).
//   Σx³ shares nothing here (x³ vs x² loses no sign but patterns fail;
//   vs x: exponents differ). Σeˣ only itself. count/min only themselves.
const bool kExpected[kN][kN] = {
    //            0  1  2  3  4  5  6  7  8  9 10 11
    /* 0 Σx   */ {1, 1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0},
    /* 1 Σ3x  */ {1, 1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0},
    /* 2 Σx²  */ {0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0},
    /* 3 Σx³  */ {0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0},
    /* 4 Σln  */ {0, 0, 0, 0, 1, 1, 0, 1, 0, 0, 0, 0},
    /* 5 Σ2ln */ {0, 0, 0, 0, 1, 1, 0, 1, 0, 0, 0, 0},
    /* 6 Σeˣ  */ {0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0},
    /* 7 Πx   */ {0, 0, 0, 0, 1, 1, 0, 1, 0, 0, 0, 0},
    /* 8 Πx²  */ {0, 0, 0, 0, 1, 1, 0, 1, 1, 0, 0, 0},
    /* 9 Πeˣ  */ {1, 1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0},
    /* 10 cnt */ {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0},
    /* 11 min */ {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1},
};

AggStateDef MakeEntry(const CatalogEntry& entry) {
  if (entry.input == nullptr) return MakeState(entry.op, nullptr);
  auto expr = ParseExpression(entry.input);
  SUDAF_CHECK_MSG(expr.ok(), expr.status().ToString());
  return MakeState(entry.op, std::move(*expr));
}

double EvalState(const AggStateDef& state, const std::vector<double>& xs) {
  if (state.op == AggOp::kCount) return static_cast<double>(xs.size());
  double acc = state.op == AggOp::kProd ? 1.0 : 0.0;
  if (state.op == AggOp::kMin) acc = HUGE_VAL;
  if (state.op == AggOp::kMax) acc = -HUGE_VAL;
  for (double x : xs) {
    RowAccessor accessor = [x](const std::string& col,
                               int64_t) -> Result<Value> {
      if (col == "x") return Value(x);
      return Status::NotFound(col);
    };
    auto v = EvalRow(*state.input, accessor, 0);
    SUDAF_CHECK(v.ok());
    switch (state.op) {
      case AggOp::kSum:
        acc += v->AsDouble();
        break;
      case AggOp::kProd:
        acc *= v->AsDouble();
        break;
      case AggOp::kMin:
        acc = std::min(acc, v->AsDouble());
        break;
      case AggOp::kMax:
        acc = std::max(acc, v->AsDouble());
        break;
      default:
        break;
    }
  }
  return acc;
}

TEST(ShareMatrixTest, MatchesHandDerivedMatrix) {
  for (int i = 0; i < kN; ++i) {
    for (int j = 0; j < kN; ++j) {
      AggStateDef si = MakeEntry(kCatalog[i]);
      AggStateDef sj = MakeEntry(kCatalog[j]);
      bool shares = Share(si, sj).has_value();
      EXPECT_EQ(shares, kExpected[i][j])
          << "share(" << si.ToString() << ", " << sj.ToString() << ")";
    }
  }
}

TEST(ShareMatrixTest, EveryPositiveCellIsNumericallyExact) {
  Rng rng(55);
  for (int i = 0; i < kN; ++i) {
    for (int j = 0; j < kN; ++j) {
      if (!kExpected[i][j]) continue;
      AggStateDef si = MakeEntry(kCatalog[i]);
      AggStateDef sj = MakeEntry(kCatalog[j]);
      auto r = Share(si, sj);
      ASSERT_TRUE(r.has_value());
      for (int trial = 0; trial < 10; ++trial) {
        std::vector<double> xs(2 + rng.NextBelow(6));
        for (double& x : xs) x = rng.NextDoubleIn(0.5, 2.5);
        testing_util::ExpectClose(EvalState(si, xs),
                                  r->Apply(EvalState(sj, xs)), 1e-8);
      }
    }
  }
}

TEST(ShareMatrixTest, MatrixIsReflexiveAndClassesAreConsistent) {
  // Positive cells must be symmetric-or-justified: if i shares j and j
  // shares i, ClassifyState must put them in one class.
  for (int i = 0; i < kN; ++i) {
    AggStateDef si = MakeEntry(kCatalog[i]);
    EXPECT_TRUE(Share(si, MakeEntry(kCatalog[i])).has_value()) << i;
    for (int j = 0; j < kN; ++j) {
      if (i == j || !kExpected[i][j] || !kExpected[j][i]) continue;
      StateClass ci = ClassifyState(MakeEntry(kCatalog[i]));
      StateClass cj = ClassifyState(MakeEntry(kCatalog[j]));
      EXPECT_EQ(ci.key, cj.key)
          << kCatalog[i].input << " vs " << kCatalog[j].input;
    }
  }
}

}  // namespace
}  // namespace sudaf

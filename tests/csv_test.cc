// Tests for storage/csv: import/export round trips, quoting, schema
// inference and error reporting.

#include <cstdio>
#include <fstream>

#include "gtest/gtest.h"
#include "storage/csv.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string Path(const std::string& name) {
    return testing::TempDir() + "/" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(CsvTest, RoundTripAllTypes) {
  Schema schema;
  ASSERT_OK(schema.AddField({"id", DataType::kInt64}));
  ASSERT_OK(schema.AddField({"price", DataType::kFloat64}));
  ASSERT_OK(schema.AddField({"name", DataType::kString}));
  Table table(schema);
  table.AppendRow({Value(int64_t{1}), Value(0.1), Value(std::string("a"))});
  table.AppendRow(
      {Value(int64_t{-7}), Value(1.0 / 3.0), Value(std::string("b,c"))});
  table.AppendRow({Value(int64_t{0}), Value(2.5),
                   Value(std::string("says \"hi\""))});

  std::string path = Path("roundtrip.csv");
  ASSERT_OK(WriteCsv(table, path));
  ASSERT_OK_AND_ASSIGN(auto back, ReadCsv(schema, path));
  ASSERT_EQ(back->num_rows(), 3);
  EXPECT_EQ(back->column(0).GetInt64(1), -7);
  EXPECT_DOUBLE_EQ(back->column(1).GetFloat64(1), 1.0 / 3.0);  // exact
  EXPECT_EQ(back->column(2).GetString(1), "b,c");
  EXPECT_EQ(back->column(2).GetString(2), "says \"hi\"");
}

TEST_F(CsvTest, InferSchemaTypes) {
  std::string path = Path("infer.csv");
  WriteFile(path, "a,b,c\n1,1.5,x\n-2,3,y\n");
  ASSERT_OK_AND_ASSIGN(auto table, ReadCsvInferSchema(path));
  EXPECT_EQ(table->schema().field(0).type, DataType::kInt64);
  EXPECT_EQ(table->schema().field(1).type, DataType::kFloat64);
  EXPECT_EQ(table->schema().field(2).type, DataType::kString);
  EXPECT_EQ(table->num_rows(), 2);
}

TEST_F(CsvTest, CrlfAndBlankLinesTolerated) {
  std::string path = Path("crlf.csv");
  WriteFile(path, "a,b\r\n1,2\r\n\r\n3,4\r\n");
  ASSERT_OK_AND_ASSIGN(auto table, ReadCsvInferSchema(path));
  EXPECT_EQ(table->num_rows(), 2);
  EXPECT_EQ(table->column(1).GetInt64(1), 4);
}

TEST_F(CsvTest, HeaderMismatchFails) {
  std::string path = Path("mismatch.csv");
  WriteFile(path, "x,y\n1,2\n");
  Schema schema;
  ASSERT_OK(schema.AddField({"a", DataType::kInt64}));
  ASSERT_OK(schema.AddField({"y", DataType::kInt64}));
  EXPECT_FALSE(ReadCsv(schema, path).ok());
}

TEST_F(CsvTest, RaggedRowFails) {
  std::string path = Path("ragged.csv");
  WriteFile(path, "a,b\n1,2\n3\n");
  EXPECT_FALSE(ReadCsvInferSchema(path).ok());
}

TEST_F(CsvTest, BadNumberFails) {
  std::string path = Path("badnum.csv");
  WriteFile(path, "a\nnot_a_number\n");
  Schema schema;
  ASSERT_OK(schema.AddField({"a", DataType::kFloat64}));
  auto result = ReadCsv(schema, path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("row 2"), std::string::npos);
}

TEST_F(CsvTest, UnterminatedQuoteFails) {
  std::string path = Path("quote.csv");
  WriteFile(path, "a\n\"oops\n");
  EXPECT_FALSE(ReadCsvInferSchema(path).ok());
}

TEST_F(CsvTest, MissingFileFails) {
  EXPECT_FALSE(ReadCsvInferSchema(Path("nope.csv")).ok());
}

TEST_F(CsvTest, EmptyDataSectionYieldsStrings) {
  std::string path = Path("empty.csv");
  WriteFile(path, "a,b\n");
  ASSERT_OK_AND_ASSIGN(auto table, ReadCsvInferSchema(path));
  EXPECT_EQ(table->num_rows(), 0);
  EXPECT_EQ(table->schema().field(0).type, DataType::kString);
}

TEST_F(CsvTest, QuotedHeaderRoundTrips) {
  Schema schema;
  ASSERT_OK(schema.AddField({"weird,name", DataType::kInt64}));
  Table table(schema);
  table.AppendRow({Value(int64_t{5})});
  std::string path = Path("weird.csv");
  ASSERT_OK(WriteCsv(table, path));
  ASSERT_OK_AND_ASSIGN(auto back, ReadCsvInferSchema(path));
  EXPECT_EQ(back->schema().field(0).name, "weird,name");
  EXPECT_EQ(back->column(0).GetInt64(0), 5);
}

}  // namespace
}  // namespace sudaf

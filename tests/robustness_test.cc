// Hardened-execution tests: QueryGuard (cancellation / deadline / memory
// budget), failpoint injection at every registered site, poison-safe state
// sharing, and epoch-based cache invalidation (docs/robustness.md).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>

#include "common/failpoint.h"
#include "common/query_guard.h"
#include "common/thread_pool.h"
#include "gtest/gtest.h"
#include "storage/csv.h"
#include "sudaf/session.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

using testing_util::ExpectClose;

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// QueryGuard units
// ---------------------------------------------------------------------------

TEST(QueryGuardTest, DefaultGuardNeverTrips) {
  QueryGuard guard;
  EXPECT_OK(guard.Check());
  EXPECT_OK(guard.ChargeMemory(1 << 30));  // budget 0 = disabled
  EXPECT_EQ(guard.checks(), 1);
}

TEST(QueryGuardTest, CancelTokenTripsCheck) {
  CancelToken token;
  QueryGuard guard;
  guard.set_cancel_token(&token);
  EXPECT_OK(guard.Check());
  token.Cancel();
  EXPECT_EQ(guard.Check().code(), StatusCode::kCancelled);
  token.Reset();
  EXPECT_OK(guard.Check());
}

TEST(QueryGuardTest, DeadlineTripsAndClears) {
  QueryGuard guard;
  guard.ArmDeadline(0);  // already expired
  EXPECT_EQ(guard.Check().code(), StatusCode::kDeadlineExceeded);
  guard.ArmDeadline(60000);
  EXPECT_OK(guard.Check());
  guard.ArmDeadline(-5);
  EXPECT_EQ(guard.Check().code(), StatusCode::kDeadlineExceeded);
  guard.ClearDeadline();
  EXPECT_OK(guard.Check());
}

TEST(QueryGuardTest, MemoryBudgetFailsClosed) {
  QueryGuard guard;
  guard.set_memory_budget(1000);
  EXPECT_OK(guard.ChargeMemory(600));
  Status st = guard.ChargeMemory(600);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  // The failed charge stays recorded: even a tiny follow-up fails.
  EXPECT_EQ(guard.ChargeMemory(1).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(guard.memory_charged(), 1201);
  guard.ResetMemoryCharge();
  EXPECT_OK(guard.ChargeMemory(600));
}

// ---------------------------------------------------------------------------
// FailPoint units
// ---------------------------------------------------------------------------

class FailPointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPoint::DeactivateAll(); }
};

TEST_F(FailPointTest, InactiveSiteIsOk) {
  EXPECT_OK(FailPoint::Check("robustness_test:unused"));
}

TEST_F(FailPointTest, SkipAndCountSemantics) {
  FailPoint::Activate("robustness_test:site", Status::Internal("injected"),
                      /*skip=*/2, /*count=*/2);
  EXPECT_OK(FailPoint::Check("robustness_test:site"));
  EXPECT_OK(FailPoint::Check("robustness_test:site"));
  EXPECT_EQ(FailPoint::Check("robustness_test:site").code(),
            StatusCode::kInternal);
  EXPECT_EQ(FailPoint::Check("robustness_test:site").code(),
            StatusCode::kInternal);
  // Spec exhausted: the site expires on its own, and with no active site
  // left the fast path stops counting hits.
  EXPECT_OK(FailPoint::Check("robustness_test:site"));
  EXPECT_EQ(FailPoint::Hits("robustness_test:site"), 4);
}

TEST_F(FailPointTest, DeactivateDisarms) {
  FailPoint::Activate("robustness_test:site", Status::Internal("injected"));
  FailPoint::Deactivate("robustness_test:site");
  EXPECT_OK(FailPoint::Check("robustness_test:site"));
}

TEST_F(FailPointTest, InjectedStatusIsCopiedVerbatim) {
  FailPoint::Activate("robustness_test:site",
                      Status::Cancelled("simulated cancel"));
  Status st = FailPoint::Check("robustness_test:site");
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_EQ(st.message(), "simulated cancel");
}

// ---------------------------------------------------------------------------
// FailPoint::ActivateFromEnv (the SUDAF_FAILPOINTS grammar)
// ---------------------------------------------------------------------------

TEST_F(FailPointTest, EnvSpecBareSiteFiresOnce) {
  ASSERT_OK_AND_ASSIGN(int armed,
                       FailPoint::ActivateFromEnv("env_test:bare"));
  EXPECT_EQ(armed, 1);
  Status st = FailPoint::Check("env_test:bare");
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  // The injected message names the site, so CI logs are attributable.
  EXPECT_NE(st.message().find("env_test:bare"), std::string::npos);
  EXPECT_OK(FailPoint::Check("env_test:bare"));  // fired once, expired
}

TEST_F(FailPointTest, EnvSpecSkipAndCountArgs) {
  ASSERT_OK_AND_ASSIGN(
      int armed, FailPoint::ActivateFromEnv("env_test:sc=skip:2:count:2"));
  EXPECT_EQ(armed, 1);
  EXPECT_OK(FailPoint::Check("env_test:sc"));
  EXPECT_OK(FailPoint::Check("env_test:sc"));
  EXPECT_FALSE(FailPoint::Check("env_test:sc").ok());
  EXPECT_FALSE(FailPoint::Check("env_test:sc").ok());
  EXPECT_OK(FailPoint::Check("env_test:sc"));
}

TEST_F(FailPointTest, EnvSpecBareCountFiresForever) {
  ASSERT_OK_AND_ASSIGN(int armed,
                       FailPoint::ActivateFromEnv("env_test:all=count"));
  EXPECT_EQ(armed, 1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(FailPoint::Check("env_test:all").ok()) << i;
  }
}

TEST_F(FailPointTest, EnvSpecArmsMultipleSites) {
  ASSERT_OK_AND_ASSIGN(
      int armed,
      FailPoint::ActivateFromEnv("env_test:one,env_test:two=skip:1"));
  EXPECT_EQ(armed, 2);
  EXPECT_FALSE(FailPoint::Check("env_test:one").ok());
  EXPECT_OK(FailPoint::Check("env_test:two"));
  EXPECT_FALSE(FailPoint::Check("env_test:two").ok());
}

TEST_F(FailPointTest, EnvSpecMalformedArmsNothing) {
  for (const char* bad :
       {"=skip:1", "env_test:a=skip", "env_test:a=skip:x",
        "env_test:a=bogus:1", "env_test:ok,env_test:b=wat"}) {
    auto result = FailPoint::ActivateFromEnv(bad);
    ASSERT_FALSE(result.ok()) << bad;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << bad;
  }
  // All-or-nothing: the valid prefix of a malformed spec was not armed.
  EXPECT_OK(FailPoint::Check("env_test:ok"));
}

TEST_F(FailPointTest, EnvSpecReadsTheEnvironmentVariable) {
  ASSERT_EQ(setenv("SUDAF_FAILPOINTS", "env_test:fromenv", 1), 0);
  ASSERT_OK_AND_ASSIGN(int armed, FailPoint::ActivateFromEnv());
  EXPECT_EQ(armed, 1);
  EXPECT_FALSE(FailPoint::Check("env_test:fromenv").ok());
  ASSERT_EQ(unsetenv("SUDAF_FAILPOINTS"), 0);
  // Absent variable arms nothing and is not an error.
  ASSERT_OK_AND_ASSIGN(armed, FailPoint::ActivateFromEnv());
  EXPECT_EQ(armed, 0);
}

// ---------------------------------------------------------------------------
// ThreadPool::TryParallelFor
// ---------------------------------------------------------------------------

class ThreadPoolRobustnessTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPoint::DeactivateAll(); }
};

TEST_F(ThreadPoolRobustnessTest, AllTasksOkReturnsOk) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> ran(16);
  EXPECT_OK(pool.TryParallelFor(16, [&](int64_t t) {
    ran[t].fetch_add(1);
    return Status::OK();
  }));
  for (auto& r : ran) EXPECT_EQ(r.load(), 1);
}

TEST_F(ThreadPoolRobustnessTest, LowestIndexedErrorWinsDeterministically) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    Status st = pool.TryParallelFor(64, [&](int64_t t) -> Status {
      if (t == 7) return Status::Internal("task 7");
      if (t == 31) return Status::InvalidArgument("task 31");
      return Status::OK();
    });
    ASSERT_EQ(st.code(), StatusCode::kInternal);
    ASSERT_EQ(st.message(), "task 7");
  }
}

TEST_F(ThreadPoolRobustnessTest, DispatchFailpointPropagates) {
  ThreadPool pool(2);
  FailPoint::Activate("thread_pool:dispatch",
                      Status::Internal("dispatch fault"));
  Status st = pool.TryParallelFor(8, [](int64_t) { return Status::OK(); });
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_EQ(st.message(), "dispatch fault");
  FailPoint::DeactivateAll();
  EXPECT_OK(pool.TryParallelFor(8, [](int64_t) { return Status::OK(); }));
}

TEST_F(ThreadPoolRobustnessTest, ZeroWorkerPoolStillPropagates) {
  ThreadPool pool(0);
  Status st = pool.TryParallelFor(4, [](int64_t t) -> Status {
    return t == 2 ? Status::Internal("serial failure") : Status::OK();
  });
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------------------
// CSV scan failpoint
// ---------------------------------------------------------------------------

TEST_F(FailPointTest, CsvScanFaultSurfacesTypedError) {
  std::string path = ::testing::TempDir() + "/robustness_scan.csv";
  {
    std::ofstream out(path);
    out << "a,b\n1,2\n3,4\n5,6\n";
  }
  // Fail on the third record: the reader must return the injected error,
  // not a partial two-row table.
  FailPoint::Activate("csv:scan", Status::Internal("disk fault"), /*skip=*/2);
  auto result = ReadCsvInferSchema(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);

  FailPoint::DeactivateAll();
  auto retry = ReadCsvInferSchema(path);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ((*retry)->num_rows(), 3);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// End-to-end: guards, injection, poison and epochs through SudafSession
// ---------------------------------------------------------------------------

class RobustSessionTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPoint::DeactivateAll(); }

  // t(g INT64, x FLOAT64, y FLOAT64) with `rows` rows spread over 8 groups.
  void Load(int64_t rows) {
    std::vector<int64_t> g(rows);
    std::vector<double> x(rows);
    for (int64_t i = 0; i < rows; ++i) {
      g[i] = i % 8;
      x[i] = static_cast<double>(i % 100) + 0.5;
    }
    catalog_.PutTable("t", testing_util::MakeXyTable(g, x, x));
    session_ = std::make_unique<SudafSession>(&catalog_);
  }

  void SetGuard(const QueryGuard* guard, int morsel_size = 64) {
    ExecOptions opts = session_->exec_options();
    opts.guard = guard;
    opts.morsel_size = morsel_size;
    session_->set_exec_options(opts);
  }

  Catalog catalog_;
  std::unique_ptr<SudafSession> session_;
};

// Acceptance (a): a query cancelled mid-execution returns kCancelled and
// leaves no partial state in the cache.
TEST_F(RobustSessionTest, CancelMidMorselLeavesNoPartialCacheInsert) {
  Load(1000);
  QueryGuard guard;
  CancelToken token;
  guard.set_cancel_token(&token);
  SetGuard(&guard, /*morsel_size=*/64);

  // Trip the guard from inside the run: fail the 4th morsel with the exact
  // status a concurrent Cancel() would produce. (The guard itself is
  // checked at every morsel boundary — proven below via checks().)
  FailPoint::Activate("state_batch:morsel", Status::Cancelled("cancelled"),
                      /*skip=*/3);
  auto result = session_->Execute("SELECT g, var(x) FROM t GROUP BY g",
                                  ExecMode::kSudafShare);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(session_->cache().num_entries(), 0);  // nothing partial

  // Re-execution succeeds and repopulates the cache.
  FailPoint::DeactivateAll();
  auto retry = session_->Execute("SELECT g, var(x) FROM t GROUP BY g",
                                 ExecMode::kSudafShare);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_GT(session_->cache().num_entries(), 0);
  EXPECT_GT(guard.checks(), 3);  // consulted at morsel granularity
}

TEST_F(RobustSessionTest, PreCancelledTokenFailsBeforeScanning) {
  Load(100);
  QueryGuard guard;
  CancelToken token;
  token.Cancel();
  guard.set_cancel_token(&token);
  SetGuard(&guard);
  auto result = session_->Execute("SELECT g, sum(x) FROM t GROUP BY g",
                                  ExecMode::kSudafShare);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  // Failed queries return no stats; the cancel fired before any scan, so
  // nothing was cached.
  EXPECT_EQ(session_->cache().num_entries(), 0u);
}

TEST_F(RobustSessionTest, ExpiredDeadlineSurfacesThroughExecute) {
  Load(100);
  QueryGuard guard;
  guard.ArmDeadline(0);
  SetGuard(&guard);
  for (ExecMode mode : {ExecMode::kEngine, ExecMode::kSudafNoShare,
                        ExecMode::kSudafShare}) {
    auto result = session_->Execute("SELECT g, avg(x) FROM t GROUP BY g",
                                    mode);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  }
}

TEST_F(RobustSessionTest, MemoryBudgetRejectsLargeScan) {
  Load(10000);
  QueryGuard guard;
  guard.set_memory_budget(1024);  // far below the frame's footprint
  SetGuard(&guard);
  auto result = session_->Execute("SELECT g, sum(x) FROM t GROUP BY g",
                                  ExecMode::kSudafShare);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(session_->cache().num_entries(), 0);

  // Raising the budget (and resetting the charge) unblocks the query.
  guard.set_memory_budget(64 << 20);
  guard.ResetMemoryCharge();
  auto retry = session_->Execute("SELECT g, sum(x) FROM t GROUP BY g",
                                 ExecMode::kSudafShare);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
}

// Acceptance (b): an injected fault during cache insert leaves the cache
// empty and a re-execution succeeds.
TEST_F(RobustSessionTest, InsertFaultLeavesCacheEmptyAndRecovers) {
  Load(200);
  FailPoint::Activate("cache:insert", Status::Internal("injected insert"));
  auto result = session_->Execute("SELECT g, var(x) FROM t GROUP BY g",
                                  ExecMode::kSudafShare);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_EQ(session_->cache().num_entries(), 0);

  FailPoint::DeactivateAll();
  auto retry = session_->Execute("SELECT g, var(x) FROM t GROUP BY g",
                                 ExecMode::kSudafShare);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_GT(session_->cache().num_entries(), 0);

  // And the recovered entries actually serve the next query.
  auto third = session_->Execute("SELECT g, var(x) FROM t GROUP BY g",
                                 ExecMode::kSudafShare);
  ASSERT_TRUE(third.ok());
  EXPECT_GT(third->stats.states_from_cache, 0);
  EXPECT_FALSE(third->stats.scanned_base_data);
}

// The insert commit is two-phase: with several pending entries and a fault
// on the SECOND insert check, not even the first entry may land.
TEST_F(RobustSessionTest, MultiEntryInsertFaultIsAtomic) {
  Load(200);
  FailPoint::Activate("cache:insert", Status::Internal("injected insert"),
                      /*skip=*/1);
  // var(x) needs three states (count, sum, sum of squares) → three inserts.
  auto result = session_->Execute("SELECT g, var(x) FROM t GROUP BY g",
                                  ExecMode::kSudafShare);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(session_->cache().num_entries(), 0);
}

TEST_F(RobustSessionTest, ProbeFaultSurfacesWithoutCorruption) {
  Load(100);
  ASSERT_TRUE(session_
                  ->Execute("SELECT g, sum(x) FROM t GROUP BY g",
                            ExecMode::kSudafShare)
                  .ok());
  int64_t cached = session_->cache().num_entries();
  FailPoint::Activate("cache:probe", Status::Internal("injected probe"));
  auto result = session_->Execute("SELECT g, sum(x) FROM t GROUP BY g",
                                  ExecMode::kSudafShare);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_EQ(session_->cache().num_entries(), cached);  // untouched

  FailPoint::DeactivateAll();
  auto retry = session_->Execute("SELECT g, sum(x) FROM t GROUP BY g",
                                 ExecMode::kSudafShare);
  ASSERT_TRUE(retry.ok());
  EXPECT_GT(retry->stats.states_from_cache, 0);
}

// Acceptance (c): a sum overflowing to Inf is reported in ExecStats, never
// cached, and a later sharing query recomputes instead of reusing poison.
TEST_F(RobustSessionTest, OverflowedStateIsServedButNeverCached) {
  std::vector<int64_t> g = {0, 0};
  std::vector<double> x = {1e308, 1e308};  // sum overflows to +inf
  catalog_.PutTable("t", testing_util::MakeXyTable(g, x, x));
  session_ = std::make_unique<SudafSession>(&catalog_);

  auto first =
      session_->Execute("SELECT sum(x) FROM t", ExecMode::kSudafShare);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  // The current query still gets the honest arithmetic answer...
  EXPECT_EQ((*first)->column(0).GetFloat64(0), kInf);
  // ...but the poisoned state is reported and not cached.
  EXPECT_GT(first->stats.states_poisoned, 0);
  EXPECT_EQ(session_->cache().num_entries(), 0);

  auto second =
      session_->Execute("SELECT sum(x) FROM t", ExecMode::kSudafShare);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*second)->column(0).GetFloat64(0), kInf);
  EXPECT_EQ(second->stats.states_from_cache, 0);  // recomputed
  EXPECT_TRUE(second->stats.scanned_base_data);
}

TEST_F(RobustSessionTest, PoisonQuarantineIsPerState) {
  // One overflowing group poisons sum(x) for the whole group set, but
  // count(x) stays finite and cacheable.
  std::vector<int64_t> g = {0, 0, 1};
  std::vector<double> x = {1e308, 1e308, 2.0};
  catalog_.PutTable("t", testing_util::MakeXyTable(g, x, x));
  session_ = std::make_unique<SudafSession>(&catalog_);

  auto first = session_->Execute(
      "SELECT g, sum(x), count(x) FROM t GROUP BY g", ExecMode::kSudafShare);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->stats.states_poisoned, 1);
  EXPECT_EQ(session_->cache().num_entries(), 1);  // count only

  auto second = session_->Execute(
      "SELECT g, sum(x), count(x) FROM t GROUP BY g", ExecMode::kSudafShare);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->stats.states_from_cache, 1);  // count reused
  EXPECT_EQ((*second)->column(1).GetFloat64(0), kInf);
  ExpectClose(1.0, (*second)->column(2).GetFloat64(1));
}

TEST_F(RobustSessionTest, PoisonedEntryPlantedInCacheIsEvictedOnProbe) {
  // Defense in depth: even if a poisoned entry somehow exists in the cache
  // (planted directly here), a probe evicts it instead of serving it.
  Load(100);
  std::string sql = "SELECT g, sum(x) FROM t GROUP BY g";
  ASSERT_TRUE(session_->Execute(sql, ExecMode::kSudafShare).ok());

  ASSERT_OK_AND_ASSIGN(std::unique_ptr<SelectStatement> stmt,
                       ParseSelect(sql));
  StateCache::GroupSetPtr set =
      session_->cache()
          .Find(DataSignature(*stmt), catalog_.TablesEpochs(stmt->tables),
                /*can_refresh=*/false)
          .set;
  ASSERT_NE(set, nullptr);
  ASSERT_EQ(set->entries.size(), 1u);
  for (auto& [key, entry] : set->entries) {
    entry.main.assign(entry.main.size(), kInf);
  }

  auto result = session_->Execute(sql, ExecMode::kSudafShare);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.cache_poison_evictions, 1);
  EXPECT_EQ(result->stats.states_from_cache, 0);
  EXPECT_TRUE(std::isfinite((*result)->column(1).GetFloat64(0)));
}

// Acceptance (d): replacing a catalog table invalidates prior entries via
// the epoch — no manual Clear() involved.
TEST_F(RobustSessionTest, TableReplacementInvalidatesViaEpoch) {
  Load(100);
  std::string sql = "SELECT g, sum(x) FROM t GROUP BY g";
  ASSERT_TRUE(session_->Execute(sql, ExecMode::kSudafShare).ok());
  ASSERT_GT(session_->cache().num_entries(), 0);

  catalog_.PutTable(
      "t", testing_util::MakeXyTable({0, 1}, {10.0, 20.0}, {0.0, 0.0}));
  auto fresh = session_->Execute(sql, ExecMode::kSudafShare);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ(fresh->stats.cache_epoch_invalidations, 1);
  EXPECT_EQ(fresh->stats.states_from_cache, 0);
  ASSERT_EQ((*fresh)->num_rows(), 2);
  ExpectClose(10.0, (*fresh)->column(1).GetFloat64(0));
  ExpectClose(20.0, (*fresh)->column(1).GetFloat64(1));
}

// Multi-table signatures snapshot the combined epoch: mutating EITHER
// joined table invalidates the cached join states.
TEST_F(RobustSessionTest, JoinSetInvalidatesWhenEitherTableMutates) {
  auto make_fact = [] {
    Schema s;
    SUDAF_CHECK(s.AddField({"fk", DataType::kInt64}).ok());
    SUDAF_CHECK(s.AddField({"v", DataType::kFloat64}).ok());
    auto t = std::make_unique<Table>(std::move(s));
    for (int64_t i = 0; i < 12; ++i) {
      t->column(0).AppendInt64(i % 3);
      t->column(1).AppendFloat64(static_cast<double>(i));
    }
    t->FinishBulkAppend();
    return t;
  };
  auto make_dim = [](int64_t keys) {
    Schema s;
    SUDAF_CHECK(s.AddField({"dk", DataType::kInt64}).ok());
    SUDAF_CHECK(s.AddField({"w", DataType::kFloat64}).ok());
    auto t = std::make_unique<Table>(std::move(s));
    for (int64_t k = 0; k < keys; ++k) {
      t->column(0).AppendInt64(k);
      t->column(1).AppendFloat64(static_cast<double>(k));
    }
    t->FinishBulkAppend();
    return t;
  };
  catalog_.PutTable("fact", make_fact());
  catalog_.PutTable("dim", make_dim(3));
  session_ = std::make_unique<SudafSession>(&catalog_);

  const std::string sql =
      "SELECT fk, sum(v) FROM fact, dim WHERE fk = dk GROUP BY fk";
  ASSERT_TRUE(session_->Execute(sql, ExecMode::kSudafShare).ok());
  ASSERT_GT(session_->cache().num_entries(), 0);

  // Mutate the DIMENSION side only; join states over (fact, dim) go.
  catalog_.PutTable("dim", make_dim(2));
  auto after_dim = session_->Execute(sql, ExecMode::kSudafShare);
  ASSERT_TRUE(after_dim.ok()) << after_dim.status().ToString();
  EXPECT_EQ(after_dim->stats.cache_epoch_invalidations, 1);
  EXPECT_EQ(after_dim->stats.states_from_cache, 0);
  ASSERT_EQ((*after_dim)->num_rows(), 2);  // key 2 no longer joins

  // Now the FACT side.
  catalog_.PutTable("fact", make_fact());
  auto after_fact = session_->Execute(sql, ExecMode::kSudafShare);
  ASSERT_TRUE(after_fact.ok());
  EXPECT_EQ(after_fact->stats.cache_epoch_invalidations, 1);
  EXPECT_EQ(after_fact->stats.states_from_cache, 0);

  // Stable epochs: an immediate re-run shares instead of recomputing.
  auto warm = session_->Execute(sql, ExecMode::kSudafShare);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->stats.cache_epoch_invalidations, 0);
  EXPECT_GT(warm->stats.states_from_cache, 0);
}

TEST_F(RobustSessionTest, InPlaceMutationInvalidatesViaTouchTable) {
  // External tables are mutated by their owner; TouchTable declares the
  // mutation and the next probe recomputes.
  auto table = testing_util::MakeXyTable({0, 1}, {1.0, 2.0}, {0.0, 0.0});
  catalog_.PutExternalTable("t", table.get());
  session_ = std::make_unique<SudafSession>(&catalog_);
  std::string sql = "SELECT g, sum(x) FROM t GROUP BY g";
  ASSERT_TRUE(session_->Execute(sql, ExecMode::kSudafShare).ok());

  catalog_.TouchTable("t");
  auto result = session_->Execute(sql, ExecMode::kSudafShare);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.cache_epoch_invalidations, 1);
  EXPECT_EQ(result->stats.states_from_cache, 0);
}

TEST_F(RobustSessionTest, UnrelatedTableMutationDoesNotInvalidate) {
  Load(100);
  std::string sql = "SELECT g, sum(x) FROM t GROUP BY g";
  ASSERT_TRUE(session_->Execute(sql, ExecMode::kSudafShare).ok());

  catalog_.PutTable(
      "other", testing_util::MakeXyTable({0}, {1.0}, {1.0}));
  auto result = session_->Execute(sql, ExecMode::kSudafShare);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.cache_epoch_invalidations, 0);
  EXPECT_GT(result->stats.states_from_cache, 0);
}

// The legacy (use_fused = false) path honors the same contracts.
TEST_F(RobustSessionTest, LegacyPathPoisonAndGuard) {
  std::vector<int64_t> g = {0, 0};
  std::vector<double> x = {1e308, 1e308};
  catalog_.PutTable("t", testing_util::MakeXyTable(g, x, x));
  session_ = std::make_unique<SudafSession>(&catalog_);
  ExecOptions opts = session_->exec_options();
  opts.use_fused = false;
  session_->set_exec_options(opts);

  auto first =
      session_->Execute("SELECT sum(x) FROM t", ExecMode::kSudafShare);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ((*first)->column(0).GetFloat64(0), kInf);
  EXPECT_GT(first->stats.states_poisoned, 0);
  EXPECT_EQ(session_->cache().num_entries(), 0);

  QueryGuard guard;
  guard.ArmDeadline(0);
  opts.guard = &guard;
  session_->set_exec_options(opts);
  auto blocked =
      session_->Execute("SELECT sum(x) FROM t", ExecMode::kSudafShare);
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(RobustSessionTest, LegacyInsertFaultRecovers) {
  Load(100);
  ExecOptions opts = session_->exec_options();
  opts.use_fused = false;
  session_->set_exec_options(opts);

  FailPoint::Activate("cache:insert", Status::Internal("injected insert"));
  auto result = session_->Execute("SELECT g, sum(x) FROM t GROUP BY g",
                                  ExecMode::kSudafShare);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(session_->cache().num_entries(), 0);

  FailPoint::DeactivateAll();
  auto retry = session_->Execute("SELECT g, sum(x) FROM t GROUP BY g",
                                 ExecMode::kSudafShare);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_GT(session_->cache().num_entries(), 0);
}

// Guard checks also cover the parallel fused path (worker threads observe
// the same cancellation deterministically through TryParallelFor).
TEST_F(RobustSessionTest, ParallelFusedPathPropagatesInjectedCancel) {
  Load(5000);
  ExecOptions opts = session_->exec_options();
  opts.parallel = true;
  opts.num_threads = 4;
  opts.morsel_size = 64;
  session_->set_exec_options(opts);

  FailPoint::Activate("state_batch:morsel", Status::Cancelled("cancelled"),
                      /*skip=*/5, /*count=*/1000000);
  auto result = session_->Execute("SELECT g, var(x) FROM t GROUP BY g",
                                  ExecMode::kSudafShare);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(session_->cache().num_entries(), 0);

  FailPoint::DeactivateAll();
  auto retry = session_->Execute("SELECT g, var(x) FROM t GROUP BY g",
                                 ExecMode::kSudafShare);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
}

}  // namespace
}  // namespace sudaf

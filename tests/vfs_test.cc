// Tests for the Vfs layer (docs/robustness.md, "Durability contract"):
// the POSIX backend's typed error taxonomy and atomic-write hygiene, the
// FaultVfs disk model (sync-only durability, lying fsyncs, rename
// rollback, short writes, ENOSPC), the exhaustive power-cut recovery
// property over every Vfs mutation site, and the ENOSPC → persistence
// breaker path through QueryService.

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/vfs.h"
#include "common/vfs_fault.h"
#include "gtest/gtest.h"
#include "storage/catalog.h"
#include "sudaf/service.h"
#include "sudaf/session.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

// ---------------------------------------------------------------------------
// ParentDirOf
// ---------------------------------------------------------------------------

TEST(ParentDirOfTest, CoversTheCases) {
  EXPECT_EQ(ParentDirOf("/a/b/c"), "/a/b");
  EXPECT_EQ(ParentDirOf("/f"), "/");
  EXPECT_EQ(ParentDirOf("rel/f"), "rel");
  EXPECT_EQ(ParentDirOf("plain"), ".");
}

// ---------------------------------------------------------------------------
// POSIX backend: taxonomy, errno detail, atomic-write hygiene
// ---------------------------------------------------------------------------

class PosixVfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/sudaf_vfs";
    std::filesystem::remove_all(dir_);
    ASSERT_OK(Vfs::Default()->CreateDirs(dir_));
  }
  void TearDown() override {
    FailPoint::DeactivateAll();
    std::filesystem::remove_all(dir_);
  }

  std::string dir_;
};

TEST_F(PosixVfsTest, InjectedFaultsSurfaceAsTheSitesNaturalType) {
  Vfs* vfs = Vfs::Default();
  struct Case {
    const char* site;
    StatusCode code;
  };
  // Whatever code the injector used, the caller sees the typed taxonomy.
  for (const Case& c : {Case{"vfs:nospace", StatusCode::kNoSpace},
                        Case{"vfs:write", StatusCode::kIoError},
                        Case{"vfs:fsync", StatusCode::kFsyncFailed},
                        Case{"vfs:dirsync", StatusCode::kFsyncFailed},
                        Case{"vfs:rename", StatusCode::kIoError},
                        Case{"vfs:open", StatusCode::kIoError}}) {
    FailPoint::Activate(c.site, Status::Internal("injected"), 0, 1000000);
    Status st = vfs->WriteAtomic(dir_ + "/f", "payload");
    FailPoint::DeactivateAll();
    ASSERT_FALSE(st.ok()) << c.site;
    EXPECT_EQ(st.code(), c.code) << c.site << ": " << st.ToString();
  }
}

TEST_F(PosixVfsTest, RealErrorsCarryErrnoDetail) {
  // Opening inside a directory that does not exist fails with a message
  // naming the operation, the path, strerror and the errno number.
  Status st = Vfs::Default()->WriteAtomic(dir_ + "/no/such/dir/f", "x");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_NE(st.ToString().find("errno"), std::string::npos) << st.ToString();
  EXPECT_NE(st.ToString().find("/no/such/dir/f"), std::string::npos)
      << st.ToString();

  auto missing = Vfs::Default()->ReadFile(dir_ + "/absent");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST_F(PosixVfsTest, FailedAtomicWriteLeavesNoTmpAndKeepsOldContent) {
  Vfs* vfs = Vfs::Default();
  std::string path = dir_ + "/f";
  ASSERT_OK(vfs->WriteAtomic(path, "v1"));
  // Fail at every pre-publish window of the tmp-write protocol; the
  // published file must keep its old content and no *.tmp may linger (the
  // satellite fix: WriteFileAtomic used to leak `path + ".tmp"` on
  // failure).
  for (const char* site :
       {"vfs:open", "vfs:write", "vfs:fsync", "vfs:rename"}) {
    FailPoint::Activate(site, Status::Internal("injected"), 0, 1000000);
    Status st = vfs->WriteAtomic(path, "v2");
    FailPoint::DeactivateAll();
    ASSERT_FALSE(st.ok()) << site;
    EXPECT_FALSE(vfs->Exists(path + ".tmp")) << site;
    ASSERT_OK_AND_ASSIGN(std::string back, vfs->ReadFile(path));
    EXPECT_EQ(back, "v1") << site;
  }
  // The dirsync window sits AFTER the rename: the new content is already
  // published (durability merely unconfirmed), and still no tmp lingers.
  FailPoint::Activate("vfs:dirsync", Status::Internal("injected"), 0,
                      1000000);
  Status st = vfs->WriteAtomic(path, "v2");
  FailPoint::DeactivateAll();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFsyncFailed);
  EXPECT_FALSE(vfs->Exists(path + ".tmp"));
  ASSERT_OK_AND_ASSIGN(std::string back, vfs->ReadFile(path));
  EXPECT_EQ(back, "v2");
  ASSERT_OK(vfs->WriteAtomic(path, "v3"));
  ASSERT_OK_AND_ASSIGN(back, vfs->ReadFile(path));
  EXPECT_EQ(back, "v3");
}

TEST_F(PosixVfsTest, AppendReportsPartialWritesAsErrors) {
  Vfs* vfs = Vfs::Default();
  std::string path = dir_ + "/wal";
  ASSERT_OK(vfs->Append(path, "abc"));
  FailPoint::Activate("vfs:write", Status::Internal("injected"));
  Status st = vfs->Append(path, "def");
  FailPoint::DeactivateAll();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  // The next append works and the stream stays byte-exact.
  ASSERT_OK(vfs->Append(path, "ghi"));
  ASSERT_OK_AND_ASSIGN(std::string back, vfs->ReadFile(path));
  EXPECT_EQ(back.substr(0, 3), "abc");
  EXPECT_EQ(back.substr(back.size() - 3), "ghi");
}

TEST_F(PosixVfsTest, ListDirIsSortedPlainFiles) {
  Vfs* vfs = Vfs::Default();
  ASSERT_OK(vfs->WriteAtomic(dir_ + "/b", "1"));
  ASSERT_OK(vfs->WriteAtomic(dir_ + "/a", "2"));
  ASSERT_OK(vfs->CreateDirs(dir_ + "/subdir"));
  std::vector<std::string> names = vfs->ListDir(dir_);
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(vfs->ListDir(dir_ + "/absent").empty());
}

// ---------------------------------------------------------------------------
// FaultVfs disk model
// ---------------------------------------------------------------------------

class FaultVfsTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPoint::DeactivateAll(); }
};

TEST_F(FaultVfsTest, OnlySyncedBytesSurviveAPowerCut) {
  FaultVfs vfs;
  ASSERT_OK(vfs.CreateDirs("d"));
  // The durable composite (write + fsync + dirsync-on-create) survives.
  ASSERT_OK(vfs.Append("d/durable", "kept"));
  // A raw write without Sync does not.
  bool created = false;
  ASSERT_OK_AND_ASSIGN(auto f, vfs.OpenAppend("d/volatile", &created));
  EXPECT_TRUE(created);
  ASSERT_OK(f->Write("lost"));
  ASSERT_OK(f->Close());

  vfs.CutPower();
  EXPECT_TRUE(vfs.powered_off());
  EXPECT_FALSE(vfs.ReadFile("d/durable").ok());  // disk is off
  vfs.Reboot();

  ASSERT_OK_AND_ASSIGN(std::string back, vfs.ReadFile("d/durable"));
  EXPECT_EQ(back, "kept");
  EXPECT_FALSE(vfs.Exists("d/volatile"));
  EXPECT_EQ(vfs.power_cuts(), 1);
}

TEST_F(FaultVfsTest, UnsyncedTailFractionModelsTornWrites) {
  FaultVfs::Options opts;
  opts.unsynced_tail_fraction = 0.5;
  FaultVfs vfs(opts);
  ASSERT_OK(vfs.CreateDirs("d"));
  ASSERT_OK(vfs.Append("d/f", "0123"));  // durable prefix
  bool created = false;
  ASSERT_OK_AND_ASSIGN(auto f, vfs.OpenAppend("d/f", &created));
  ASSERT_OK(f->Write("abcdefgh"));  // un-synced tail of 8
  ASSERT_OK(f->Close());

  vfs.CutPower();
  vfs.Reboot();
  ASSERT_OK_AND_ASSIGN(std::string back, vfs.ReadFile("d/f"));
  // The durable prefix is intact; half the dirty tail leaked to disk —
  // exactly the kernel-wrote-back-some-pages crash a WAL must tolerate.
  EXPECT_EQ(back, "0123abcd");
}

TEST_F(FaultVfsTest, LyingFsyncReportsOkWithoutDurability) {
  FaultVfs vfs;
  ASSERT_OK(vfs.CreateDirs("d"));
  FailPoint::Activate("vfs:fsync_lie", Status::Internal("lie"), 0, 1000000);
  ASSERT_OK(vfs.Append("d/f", "gone"));  // reports success!
  FailPoint::DeactivateAll();
  ASSERT_OK_AND_ASSIGN(std::string live, vfs.ReadFile("d/f"));
  EXPECT_EQ(live, "gone");  // visible while powered
  vfs.CutPower();
  vfs.Reboot();
  // The dirsync made the *name* durable, but the lying fsync never made
  // the *content* durable: the file survives empty — the classic
  // lost-write a lying fsync produces on real hardware.
  EXPECT_TRUE(vfs.Exists("d/f"));
  ASSERT_OK_AND_ASSIGN(std::string back, vfs.ReadFile("d/f"));
  EXPECT_EQ(back, "");
}

TEST_F(FaultVfsTest, RenameRollsBackOnPowerCutWithoutDirsync) {
  FaultVfs vfs;
  ASSERT_OK(vfs.CreateDirs("d"));
  ASSERT_OK(vfs.Append("d/old", "content"));
  ASSERT_OK(vfs.Rename("d/old", "d/new"));
  EXPECT_FALSE(vfs.Exists("d/old"));
  EXPECT_TRUE(vfs.Exists("d/new"));

  vfs.CutPower();
  vfs.Reboot();
  // The rename was never dirsynced: the old name, old content, reappears.
  EXPECT_TRUE(vfs.Exists("d/old"));
  EXPECT_FALSE(vfs.Exists("d/new"));

  ASSERT_OK(vfs.Rename("d/old", "d/new"));
  ASSERT_OK(vfs.SyncDir("d"));
  vfs.CutPower();
  vfs.Reboot();
  EXPECT_FALSE(vfs.Exists("d/old"));
  ASSERT_OK_AND_ASSIGN(std::string back, vfs.ReadFile("d/new"));
  EXPECT_EQ(back, "content");
}

TEST_F(FaultVfsTest, ShortWriteLandsHalfThenErrors) {
  FaultVfs vfs;
  ASSERT_OK(vfs.CreateDirs("d"));
  bool created = false;
  ASSERT_OK_AND_ASSIGN(auto f, vfs.OpenAppend("d/f", &created));
  FailPoint::Activate("vfs:short_write", Status::Internal("short"));
  Status st = f->Write("abcdefgh");
  FailPoint::DeactivateAll();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_EQ(vfs.FileSize("d/f"), 4);  // half the buffer reached the file
}

TEST_F(FaultVfsTest, NoSpaceIsTyped) {
  FaultVfs vfs;
  ASSERT_OK(vfs.CreateDirs("d"));
  FailPoint::Activate("vfs:nospace", Status::Internal("full"), 0, 1000000);
  Status st = vfs.Append("d/f", "x");
  FailPoint::DeactivateAll();
  EXPECT_EQ(st.code(), StatusCode::kNoSpace);
}

TEST_F(FaultVfsTest, WriteAtomicIsAllOrNothingAcrossPowerCuts) {
  // With dirsync honored, WriteAtomic's contract holds on the fault disk
  // exactly as on POSIX: after OK the new bytes survive a cut.
  FaultVfs vfs;
  ASSERT_OK(vfs.CreateDirs("d"));
  ASSERT_OK(vfs.WriteAtomic("d/f", "published"));
  vfs.CutPower();
  vfs.Reboot();
  ASSERT_OK_AND_ASSIGN(std::string back, vfs.ReadFile("d/f"));
  EXPECT_EQ(back, "published");
  EXPECT_FALSE(vfs.Exists("d/f.tmp"));
}

// ---------------------------------------------------------------------------
// The recovery property: power-cut at EVERY Vfs mutation site
// ---------------------------------------------------------------------------

class PowerCutRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<int64_t> g(120);
    std::vector<double> x(120);
    for (int64_t i = 0; i < 120; ++i) {
      g[i] = i % 5;
      x[i] = static_cast<double>((i * 31) % 53) + 0.125;
    }
    catalog_.PutTable("t", testing_util::MakeXyTable(g, x, x));
  }
  void TearDown() override { FailPoint::DeactivateAll(); }

  static const std::vector<std::string>& Queries() {
    static const std::vector<std::string> kQueries = {
        "SELECT g, sum(x), count(x) FROM t GROUP BY g ORDER BY g",
        "SELECT g, var(x), avg(x) FROM t GROUP BY g ORDER BY g",
    };
    return kQueries;
  }

  static std::string Fingerprint(const Table& t) {
    std::string fp;
    for (int c = 0; c < t.num_columns(); ++c) {
      for (int64_t r = 0; r < t.num_rows(); ++r) {
        if (t.column(c).type() == DataType::kInt64) {
          int64_t v = t.column(c).GetInt64(r);
          fp.append(reinterpret_cast<const char*>(&v), sizeof(v));
        } else {
          double v = t.column(c).GetFloat64(r);
          fp.append(reinterpret_cast<const char*>(&v), sizeof(v));
        }
      }
    }
    return fp;
  }

  std::vector<std::string> RunAll(SudafSession* session) {
    std::vector<std::string> prints;
    for (const std::string& sql : Queries()) {
      auto result = session->Execute(sql, ExecMode::kSudafShare);
      EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
      prints.push_back(result.ok() ? Fingerprint(**result) : "");
    }
    return prints;
  }

  Catalog catalog_;
};

TEST_F(PowerCutRecoveryTest, BitIdenticalAtEveryVfsCallSite) {
  // Ground truth from a cold, persistence-free session.
  SudafSession cold(&catalog_);
  std::vector<std::string> want = RunAll(&cold);

  // Count the Vfs mutations of one clean persistent run; that count is the
  // index space of the power cut.
  FaultVfs clean_vfs;
  {
    SessionOptions opts;
    opts.set_vfs(&clean_vfs);
    SudafSession s(&catalog_, opts);
    ASSERT_OK(s.EnableCachePersistence("store"));
    std::vector<std::string> got = RunAll(&s);
    for (size_t q = 0; q < want.size(); ++q) EXPECT_EQ(got[q], want[q]);
  }
  const int64_t mutations = clean_vfs.mutation_calls();
  ASSERT_GT(mutations, 0);

  for (int64_t k = 0; k < mutations; ++k) {
    SCOPED_TRACE("power cut at mutation " + std::to_string(k));
    // Vary what the dying disk leaves behind: strict sync-only, torn
    // tails, full dirty write-back; namespace rollback vs survival.
    FaultVfs::Options fopts;
    fopts.unsynced_tail_fraction = 0.5 * static_cast<double>(k % 3);
    fopts.volatile_metadata_survives = (k % 2) == 1;
    FaultVfs vfs(fopts);
    FailPoint::Activate("vfs:power_cut", Status::Internal("power cut"),
                        static_cast<int>(k), 1);
    {
      SessionOptions opts;
      opts.set_vfs(&vfs);
      SudafSession a(&catalog_, opts);
      // The cut can land inside the enable itself; that is allowed to
      // fail — the session then simply runs memory-only.
      (void)a.EnableCachePersistence("store");
      // Queries NEVER fail: WAL errors after the cut are absorbed into
      // wal_errors, and the answers stay bit-identical.
      std::vector<std::string> during = RunAll(&a);
      for (size_t q = 0; q < want.size(); ++q) {
        EXPECT_EQ(during[q], want[q]) << "query " << q << " during outage";
      }
    }
    FailPoint::DeactivateAll();
    ASSERT_EQ(vfs.power_cuts(), 1);
    vfs.Reboot();

    // Restart: attaching whatever the cut left behind must succeed, and
    // the recovered cache must answer bit-identically to the cold run.
    SessionOptions opts;
    opts.set_vfs(&vfs);
    SudafSession b(&catalog_, opts);
    ASSERT_OK(b.EnableCachePersistence("store"));
    std::vector<std::string> got = RunAll(&b);
    for (size_t q = 0; q < want.size(); ++q) {
      EXPECT_EQ(got[q], want[q]) << "query " << q << " after recovery";
    }
  }
}

// ---------------------------------------------------------------------------
// ENOSPC mid-WAL-append → breaker degrades to memory-only, zero failures
// ---------------------------------------------------------------------------

TEST(VfsBreakerTest, NoSpaceDegradesToMemoryOnlyWithZeroFailedQueries) {
  Catalog catalog;
  std::vector<int64_t> g(100);
  std::vector<double> x(100);
  for (int64_t i = 0; i < 100; ++i) {
    g[i] = i % 4;
    x[i] = static_cast<double>(i % 11) + 0.5;
  }
  catalog.PutTable("t", testing_util::MakeXyTable(g, x, x));

  std::string dir = ::testing::TempDir() + "/sudaf_vfs_breaker";
  std::filesystem::remove_all(dir);
  SudafSession session(&catalog);
  ASSERT_OK(session.EnableCachePersistence(dir));

  ServiceOptions sopts;
  sopts.max_concurrency = 1;
  sopts.breaker.open_after_errors = 2;
  sopts.breaker.half_open_after = 3;
  QueryService service(&session, sopts);

  // The disk "fills up": every WAL append hits ENOSPC from here on.
  FailPoint::Activate("vfs:nospace", Status::Internal("disk full"), 0,
                      1000000);
  for (int i = 0; i < 6; ++i) {
    // Distinct predicates force fresh cache inserts → WAL appends → errors.
    auto result = service.Execute(
        "SELECT g, sum(x) FROM t WHERE x > " + std::to_string(i) +
            " GROUP BY g ORDER BY g",
        ExecMode::kSudafShare);
    ASSERT_TRUE(result.ok()) << "query " << i << ": "
                             << result.status().ToString();
  }
  // The breaker opened and the store is suspended: memory-only mode.
  EXPECT_EQ(service.breaker_state(), QueryService::BreakerState::kOpen);
  EXPECT_TRUE(session.cache_persistence_suspended());

  // Queries keep succeeding while open, flagged as degraded.
  auto degraded = service.Execute("SELECT g, count(x) FROM t GROUP BY g",
                                  ExecMode::kSudafShare);
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded->stats.degraded_cache_memory_only);

  // Space returns; the half-open probe republishes and closes the breaker.
  FailPoint::DeactivateAll();
  for (int i = 0; i < 8 &&
                  service.breaker_state() != QueryService::BreakerState::kClosed;
       ++i) {
    auto result = service.Execute("SELECT g, avg(x) FROM t GROUP BY g",
                                  ExecMode::kSudafShare);
    ASSERT_TRUE(result.ok());
  }
  EXPECT_EQ(service.breaker_state(), QueryService::BreakerState::kClosed);
  EXPECT_FALSE(session.cache_persistence_suspended());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sudaf

// Tests for sudaf/chunked: data-dimension sharing over predefined chunks
// (the extension sketched in Sections 2 and 8 of the paper).

#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "sudaf/chunked.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

using testing_util::ExpectClose;

class ChunkedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // events(ts INT64 in [0, 1000), grp INT64, v FLOAT64)
    Schema schema;
    ASSERT_OK(schema.AddField({"ts", DataType::kInt64}));
    ASSERT_OK(schema.AddField({"grp", DataType::kInt64}));
    ASSERT_OK(schema.AddField({"v", DataType::kFloat64}));
    auto events = std::make_unique<Table>(std::move(schema));
    Rng rng(808);
    for (int i = 0; i < 5000; ++i) {
      events->column(0).AppendInt64(rng.NextBelow(1000));
      events->column(1).AppendInt64(rng.NextBelow(3));
      events->column(2).AppendFloat64(rng.NextDoubleIn(0.5, 9.5));
    }
    events->FinishBulkAppend();
    catalog_.PutTable("events", std::move(events));
    session_ = std::make_unique<SudafSession>(&catalog_);
    chunked_ = std::make_unique<ChunkedSharingSession>(
        session_.get(), "events", "ts", /*chunk_width=*/100);
  }

  void ExpectMatchesDirect(const std::string& sql, double tol = 1e-9) {
    auto direct = session_->Execute(sql, ExecMode::kSudafNoShare);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    auto via_chunks = chunked_->Execute(sql);
    ASSERT_TRUE(via_chunks.ok()) << via_chunks.status().ToString();
    ASSERT_EQ((*direct)->num_rows(), (*via_chunks)->num_rows());
    for (int c = 0; c < (*direct)->num_columns(); ++c) {
      for (int64_t r = 0; r < (*direct)->num_rows(); ++r) {
        ExpectClose((*direct)->column(c).GetNumeric(r),
                    (*via_chunks)->column(c).GetNumeric(r), tol);
      }
    }
  }

  Catalog catalog_;
  std::unique_ptr<SudafSession> session_;
  std::unique_ptr<ChunkedSharingSession> chunked_;
};

TEST_F(ChunkedTest, RangeQueryMatchesDirectExecution) {
  ExpectMatchesDirect(
      "SELECT qm(v), stddev(v) FROM events WHERE ts >= 200 AND ts < 600");
  EXPECT_EQ(chunked_->last_stats().chunks_needed, 4);
  EXPECT_EQ(chunked_->last_stats().chunks_computed, 4);
}

TEST_F(ChunkedTest, OverlappingRangeReusesCommonChunks) {
  ExpectMatchesDirect("SELECT qm(v) FROM events WHERE ts >= 0 AND ts < 400");
  EXPECT_EQ(chunked_->last_stats().chunks_computed, 4);
  // Overlap [200, 600): chunks 2,3 cached, 4,5 fresh — and a *different*
  // UDAF still shares (stddev needs Σv², Σv, count; qm cached Σv², count).
  ExpectMatchesDirect(
      "SELECT stddev(v) FROM events WHERE ts >= 200 AND ts < 600");
  EXPECT_EQ(chunked_->last_stats().chunks_from_cache, 0);
  EXPECT_EQ(chunked_->last_stats().chunks_computed, 4);
  // Third query entirely inside cached territory: zero computation.
  ExpectMatchesDirect(
      "SELECT var(v), avg(v) FROM events WHERE ts >= 200 AND ts < 500");
  EXPECT_EQ(chunked_->last_stats().chunks_from_cache, 3);
  EXPECT_EQ(chunked_->last_stats().chunks_computed, 0);
}

TEST_F(ChunkedTest, FullDomainQueryWithoutPredicate) {
  ExpectMatchesDirect("SELECT avg(v), qm(v) FROM events");
  EXPECT_EQ(chunked_->last_stats().chunks_needed, 10);
}

TEST_F(ChunkedTest, GroupByMergesPerChunkGroups) {
  ExpectMatchesDirect(
      "SELECT grp, qm(v), count(v) FROM events WHERE ts >= 100 AND ts < 900 "
      "GROUP BY grp ORDER BY grp");
}

TEST_F(ChunkedTest, ResidualPredicatesPartitionTheCache) {
  ExpectMatchesDirect(
      "SELECT sum(v) FROM events WHERE ts >= 0 AND ts < 300 AND grp = 1");
  int64_t after_first = chunked_->num_cached_chunk_entries();
  // Same range, different residual predicate: must not share.
  ExpectMatchesDirect(
      "SELECT sum(v) FROM events WHERE ts >= 0 AND ts < 300 AND grp = 2");
  EXPECT_EQ(chunked_->last_stats().chunks_from_cache, 0);
  EXPECT_GT(chunked_->num_cached_chunk_entries(), after_first);
}

TEST_F(ChunkedTest, CrossShapeSharingWithinChunks) {
  ExpectMatchesDirect(
      "SELECT sum(v^2) FROM events WHERE ts >= 0 AND ts < 200");
  // Σ4v² served from the per-chunk Σv² representatives.
  ExpectMatchesDirect(
      "SELECT sum(4*v^2) FROM events WHERE ts >= 0 AND ts < 200");
  EXPECT_EQ(chunked_->last_stats().chunks_computed, 0);
}

TEST_F(ChunkedTest, LogDomainStatesMergeAcrossChunks) {
  ExpectMatchesDirect(
      "SELECT gm(v) FROM events WHERE ts >= 0 AND ts < 500", 1e-8);
  // prod over the same range comes from the merged log channels.
  ExpectMatchesDirect(
      "SELECT sum(ln(v)) FROM events WHERE ts >= 0 AND ts < 500", 1e-8);
  EXPECT_EQ(chunked_->last_stats().chunks_computed, 0);
}

TEST_F(ChunkedTest, MisalignedRangeIsRejected) {
  auto result = chunked_->Execute(
      "SELECT qm(v) FROM events WHERE ts >= 150 AND ts < 600");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST_F(ChunkedTest, UnsupportedChunkPredicateIsRejected) {
  auto result = chunked_->Execute(
      "SELECT qm(v) FROM events WHERE ts = 100");
  EXPECT_FALSE(result.ok());
}

TEST_F(ChunkedTest, WrongTableIsRejected) {
  catalog_.PutTable("other", testing_util::MakeXyTable({1}, {1.0}, {1.0}));
  auto result = chunked_->Execute("SELECT sum(x) FROM other");
  EXPECT_FALSE(result.ok());
}

TEST_F(ChunkedTest, MinMaxMergeWithTheirOwnOps) {
  ExpectMatchesDirect(
      "SELECT min(v), max(v) FROM events WHERE ts >= 300 AND ts < 800");
}

}  // namespace
}  // namespace sudaf

// Tests for sudaf/shape: the closed normal-form algebra that evaluates
// f1 ∘ f2⁻¹ symbolically. Includes property sweeps checking the algebra
// against numeric evaluation.

#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "sudaf/shape.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

using testing_util::ExpectClose;

TEST(ShapeTest, ConstructorsNormalizeDegenerateParams) {
  EXPECT_EQ(Shape::Power(3.0, 0.0).family, ShapeFamily::kConst);
  EXPECT_EQ(Shape::Power(0.0, 2.0).family, ShapeFamily::kConst);
  EXPECT_TRUE(Shape::Power(1.0, 1.0).IsIdentity());
}

TEST(ShapeTest, EvalPerFamily) {
  ExpectClose(5.0, Shape::Const(5.0).Eval(99.0));
  ExpectClose(18.0, Shape::Power(2.0, 2.0).Eval(3.0));
  ExpectClose(3.0 * std::log(2.0) + 1.0, Shape::Log(3.0, 1.0).Eval(2.0));
  ExpectClose(2.0 * std::exp(6.0), Shape::Exp(2.0, 3.0).Eval(2.0));
}

TEST(ShapeTest, ComposePowerPower) {
  // 2·(3x²)³ = 54·x⁶
  auto c = ComposeShapes(Shape::Power(2.0, 3.0), Shape::Power(3.0, 2.0));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->family, ShapeFamily::kPower);
  ExpectClose(54.0, c->a);
  ExpectClose(6.0, c->p);
}

TEST(ShapeTest, ComposeLogPower) {
  // 2·ln(3x²) = 4·ln x + 2·ln 3
  auto c = ComposeShapes(Shape::Log(2.0, 0.0), Shape::Power(3.0, 2.0));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->family, ShapeFamily::kLog);
  ExpectClose(4.0, c->a);
  ExpectClose(2.0 * std::log(3.0), c->b);
}

TEST(ShapeTest, ComposeExpLogGivesPower) {
  // e^(2·ln x) = x²
  auto c = ComposeShapes(Shape::Exp(1.0, 1.0), Shape::Log(2.0, 0.0));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->family, ShapeFamily::kPower);
  ExpectClose(1.0, c->a);
  ExpectClose(2.0, c->p);
}

TEST(ShapeTest, ComposeOutsideFamiliesFails) {
  // e^(e^x) is not representable.
  EXPECT_FALSE(
      ComposeShapes(Shape::Exp(1.0, 1.0), Shape::Exp(1.0, 1.0)).has_value());
  // ln(ln x) is not representable.
  EXPECT_FALSE(
      ComposeShapes(Shape::Log(1.0, 0.0), Shape::Log(1.0, 0.0)).has_value());
}

TEST(ShapeTest, InversePower) {
  auto inv = InverseShape(Shape::Power(4.0, 2.0));
  ASSERT_TRUE(inv.has_value());
  // y = 4x² -> x = (y/4)^(1/2)
  ExpectClose(3.0, inv->Eval(36.0));
}

TEST(ShapeTest, InverseOfNegativeLinear) {
  auto inv = InverseShape(Shape::Power(-2.0, 1.0));
  ASSERT_TRUE(inv.has_value());
  ExpectClose(-3.0, inv->Eval(6.0));
}

TEST(ShapeTest, ConstHasNoInverse) {
  EXPECT_FALSE(InverseShape(Shape::Const(2.0)).has_value());
}

// Property sweep: for every family pair that composes, the symbolic
// composition must agree with pointwise numeric composition on the positive
// domain; for every invertible shape, f(f⁻¹(y)) ≈ y.
class ShapeAlgebraProperty : public ::testing::TestWithParam<int> {};

Shape RandomShape(Rng* rng) {
  double a = rng->NextDoubleIn(0.5, 3.0);
  double second = rng->NextDoubleIn(0.5, 2.5);
  switch (rng->NextBelow(6)) {
    case 0:
      return Shape::Power(a, second);
    case 1: {
      Shape s;
      s.family = ShapeFamily::kAffine;
      s.a = a;
      s.b = second;
      return s;
    }
    case 2:
      return Shape::Log(a, rng->NextDoubleIn(-1.0, 1.0));
    case 3:
      return Shape::Exp(a, second);
    case 4: {
      Shape s;
      s.family = ShapeFamily::kLogPow;
      s.a = a;
      s.p = 2.0 + second;  // keep away from 1
      return s;
    }
    default: {
      Shape s;
      s.family = ShapeFamily::kExpPow;
      s.a = a;
      s.c = second;
      s.p = 2.5;
      return s;
    }
  }
}

TEST_P(ShapeAlgebraProperty, CompositionMatchesNumerically) {
  Rng rng(1000 + GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    Shape outer = RandomShape(&rng);
    Shape inner = RandomShape(&rng);
    std::optional<Shape> composed = ComposeShapes(outer, inner);
    if (!composed.has_value()) continue;
    for (int i = 0; i < 5; ++i) {
      // Stay on x > 1 so logs are positive and every family is defined.
      double x = rng.NextDoubleIn(1.5, 4.0);
      double direct = outer.Eval(inner.Eval(x));
      double via = composed->Eval(x);
      if (!std::isfinite(direct) || !std::isfinite(via)) continue;
      ExpectClose(direct, via, 1e-6);
    }
  }
}

TEST_P(ShapeAlgebraProperty, InverseRoundTrips) {
  Rng rng(2000 + GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    Shape shape = RandomShape(&rng);
    std::optional<Shape> inv = InverseShape(shape);
    if (!inv.has_value()) continue;
    for (int i = 0; i < 5; ++i) {
      double x = rng.NextDoubleIn(1.5, 4.0);
      double y = shape.Eval(x);
      if (!std::isfinite(y)) continue;
      double back = inv->Eval(y);
      if (!std::isfinite(back)) continue;
      ExpectClose(x, back, 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShapeAlgebraProperty,
                         ::testing::Range(0, 8));

TEST(ShapeChainTest, FoldsPrimitiveChains) {
  // 3·(x²): chain [power 2, linear 3].
  PrimitiveChain chain = {{PrimitiveKind::kPower, 2.0},
                          {PrimitiveKind::kLinear, 3.0}};
  auto shape = ShapeFromChain(chain);
  ASSERT_TRUE(shape.has_value());
  EXPECT_EQ(shape->family, ShapeFamily::kPower);
  ExpectClose(3.0, shape->a);
  ExpectClose(2.0, shape->p);
}

TEST(ShapeChainTest, LogBaseConversion) {
  // log_2(x) = ln x / ln 2.
  PrimitiveChain chain = {{PrimitiveKind::kLog, 2.0}};
  auto shape = ShapeFromChain(chain);
  ASSERT_TRUE(shape.has_value());
  EXPECT_EQ(shape->family, ShapeFamily::kLog);
  ExpectClose(3.0, shape->Eval(8.0));
}

TEST(ShapeChainTest, Example51Transformation) {
  // Example 5.1 of the paper: f1∘f2⁻¹ with f1 = 4x², f2 = (3x)² must be
  // (4/9)·x — derived here with zero expression rewriting.
  Shape f1 = *ComposeShapes(Shape::Power(4.0, 1.0), Shape::Power(1.0, 2.0));
  Shape f2 = Shape::Power(9.0, 2.0);  // (3x)² = 9x²
  auto inv = InverseShape(f2);
  ASSERT_TRUE(inv.has_value());
  auto g = ComposeShapes(f1, *inv);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->family, ShapeFamily::kPower);
  ExpectClose(4.0 / 9.0, g->a);
  ExpectClose(1.0, g->p);
}

TEST(PrimitivesTest, InjectiveAndEvenClassification) {
  // Figure 3: even integer powers are the only non-injective, non-constant
  // primitives.
  EXPECT_FALSE((Primitive{PrimitiveKind::kPower, 2.0}).injective());
  EXPECT_TRUE((Primitive{PrimitiveKind::kPower, 2.0}).even());
  EXPECT_TRUE((Primitive{PrimitiveKind::kPower, 3.0}).injective());
  EXPECT_TRUE((Primitive{PrimitiveKind::kPower, 0.5}).injective());
  EXPECT_TRUE((Primitive{PrimitiveKind::kLinear, -2.0}).injective());
  EXPECT_TRUE((Primitive{PrimitiveKind::kLog, 2.0}).injective());
  EXPECT_TRUE((Primitive{PrimitiveKind::kExp, 2.0}).injective());
  EXPECT_FALSE((Primitive{PrimitiveKind::kConst, 5.0}).injective());
}

TEST(PrimitivesTest, ChainEvaluation) {
  PrimitiveChain chain = {{PrimitiveKind::kPower, 2.0},
                          {PrimitiveKind::kLinear, 3.0}};
  ExpectClose(12.0, EvalChain(chain, 2.0));
  EXPECT_EQ(ChainToString(chain), "3*(x^2)");
}

}  // namespace
}  // namespace sudaf

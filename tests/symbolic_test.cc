// Tests for sudaf/symbolic: the l-bounded symbolic space, its size bound,
// the precomputed digraph and its equivalence classes (Figures 4–5).

#include <set>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "sudaf/symbolic.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

TEST(SymbolicSpaceTest, SizesMatchTheBound) {
  // |saggs_l| = 2(4^{l+1}-1)/3 for the exact enumeration.
  EXPECT_EQ(SymbolicSpace::Build(0).states().size(), 2u);
  EXPECT_EQ(SymbolicSpace::Build(1).states().size(), 10u);
  EXPECT_EQ(SymbolicSpace::Build(2).states().size(), 42u);
}

TEST(SymbolicSpaceTest, Level0HasSumAndProd) {
  SymbolicSpace space = SymbolicSpace::Build(0);
  std::set<std::string> names;
  for (const SymbolicState& s : space.states()) names.insert(s.ToString());
  EXPECT_TRUE(names.count("Σ x"));
  EXPECT_TRUE(names.count("Π x"));
}

class SymbolicSpace2Test : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { space_ = new SymbolicSpace(SymbolicSpace::Build(2)); }
  static void TearDownTestSuite() {
    delete space_;
    space_ = nullptr;
  }

  int IndexOf(const std::string& name) {
    for (size_t i = 0; i < space_->states().size(); ++i) {
      if (space_->states()[i].ToString() == name) return static_cast<int>(i);
    }
    ADD_FAILURE() << "no symbolic state named " << name;
    return -1;
  }

  static SymbolicSpace* space_;
};

SymbolicSpace* SymbolicSpace2Test::space_ = nullptr;

TEST_F(SymbolicSpace2Test, SumXClassContainsLinearAndExpProducts) {
  // Figure 4: [Σx] = {Σx, Σ p·x, Π p^x, ...}.
  int base = IndexOf("Σ x");
  int linear = IndexOf("Σ p1*(x)");
  int prod_exp = IndexOf("Π p1^(x)");
  ASSERT_GE(base, 0);
  ASSERT_GE(linear, 0);
  ASSERT_GE(prod_exp, 0);
  EXPECT_EQ(space_->class_of()[base], space_->class_of()[linear]);
  EXPECT_EQ(space_->class_of()[base], space_->class_of()[prod_exp]);
}

TEST_F(SymbolicSpace2Test, LogClassUnitesProductsAndSumLogs) {
  int prod = IndexOf("Π x");
  int sum_log = IndexOf("Σ log_p1(x)");
  EXPECT_EQ(space_->class_of()[prod], space_->class_of()[sum_log]);
}

TEST_F(SymbolicSpace2Test, PowerSumsAreWeaklyRelated) {
  // Σ x^p and Σ p2·x^p1 share under the tied-exponent condition — a weak
  // edge, same class.
  int pow = IndexOf("Σ (x)^p1");
  int scaled = IndexOf("Σ p2*((x)^p1)");
  EXPECT_EQ(space_->class_of()[pow], space_->class_of()[scaled]);
  bool found_weak = false;
  for (const SymbolicEdge& e : space_->edges()) {
    if (e.from == scaled && e.to == pow && e.kind == EdgeKind::kWeak) {
      found_weak = true;
    }
  }
  EXPECT_TRUE(found_weak);
}

TEST_F(SymbolicSpace2Test, SumAndPowerSumsStayDistinct) {
  int sum = IndexOf("Σ x");
  int pow = IndexOf("Σ (x)^p1");
  EXPECT_NE(space_->class_of()[sum], space_->class_of()[pow]);
}

TEST_F(SymbolicSpace2Test, RepresentativesHaveMinimalChains) {
  for (int c = 0; c < space_->num_classes(); ++c) {
    const SymbolicState& rep = space_->states()[space_->representative(c)];
    for (size_t i = 0; i < space_->states().size(); ++i) {
      if (space_->class_of()[i] == c) {
        EXPECT_LE(rep.chain.size(), space_->states()[i].chain.size());
      }
    }
  }
}

TEST_F(SymbolicSpace2Test, EveryEdgeIsNumericallySound) {
  // For each digraph edge, instantiate both endpoints consistently with the
  // edge's regime and verify the claimed sharing numerically.
  Rng rng(31337);
  const std::vector<double> tied = {2.5, 3.5, 1.75, 2.25};
  const std::vector<double> free1 = {2.5, 3.5, 1.75, 2.25};
  const std::vector<double> free2 = {4.2, 5.5, 3.25, 6.75};
  int checked = 0;
  for (const SymbolicEdge& e : space_->edges()) {
    AggStateDef s1 = space_->states()[e.from].Instantiate(free1);
    AggStateDef s2 = space_->states()[e.to].Instantiate(
        e.kind == EdgeKind::kStrong ? free2 : tied);
    std::optional<SharedComputation> r = Share(s1, s2);
    ASSERT_TRUE(r.has_value())
        << space_->states()[e.from].ToString() << " -> "
        << space_->states()[e.to].ToString();
    ++checked;
  }
  EXPECT_GT(checked, 40);  // the digraph is dense enough to be interesting
}

TEST_F(SymbolicSpace2Test, DescribeMentionsBoundAndClasses) {
  std::string description = space_->Describe();
  EXPECT_NE(description.find("42 states"), std::string::npos);
  EXPECT_NE(description.find("equivalence classes"), std::string::npos);
}

TEST(SymbolicStateTest, InstantiateMatchesRendering) {
  SymbolicState state{AggOp::kSum,
                      {PrimitiveKind::kPower, PrimitiveKind::kLinear}};
  EXPECT_EQ(state.ToString(), "Σ p2*((x)^p1)");
  AggStateDef concrete = state.Instantiate({2.0, 3.0});
  ASSERT_TRUE(concrete.norm.has_value());
  EXPECT_EQ(concrete.norm->base.Key(), "x");
  EXPECT_EQ(concrete.norm->shape.family, ShapeFamily::kPower);
}

}  // namespace
}  // namespace sudaf

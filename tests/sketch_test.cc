// Tests for sketch/: the moments sketch and the maximum-entropy quantile
// solver (MomentSolver).

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "sketch/maxent_solver.h"
#include "sketch/moment_sketch.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

using testing_util::ExpectClose;

std::vector<double> UniformSample(int n, double lo, double hi,
                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (double& x : xs) x = rng.NextDoubleIn(lo, hi);
  return xs;
}

double TrueQuantile(std::vector<double> xs, double phi) {
  std::sort(xs.begin(), xs.end());
  return xs[static_cast<size_t>(phi * (xs.size() - 1))];
}

TEST(MomentSketchTest, AddTracksAllStates) {
  MomentSketch sketch(4);
  sketch.Add(2.0);
  sketch.Add(3.0);
  EXPECT_DOUBLE_EQ(sketch.min, 2.0);
  EXPECT_DOUBLE_EQ(sketch.max, 3.0);
  EXPECT_DOUBLE_EQ(sketch.count, 2.0);
  EXPECT_DOUBLE_EQ(sketch.power_sums[0], 5.0);      // Σx
  EXPECT_DOUBLE_EQ(sketch.power_sums[1], 13.0);     // Σx²
  ExpectClose(std::log(2.0) + std::log(3.0), sketch.log_sums[0]);
}

TEST(MomentSketchTest, MergeEqualsBulk) {
  std::vector<double> xs = UniformSample(500, 1.0, 9.0, 3);
  MomentSketch whole = MomentSketch::FromValues(xs, 8);
  MomentSketch left(8);
  MomentSketch right(8);
  for (size_t i = 0; i < xs.size(); ++i) {
    (i % 2 == 0 ? left : right).Add(xs[i]);
  }
  left.Merge(right);
  EXPECT_DOUBLE_EQ(whole.count, left.count);
  EXPECT_DOUBLE_EQ(whole.min, left.min);
  for (int j = 0; j < 8; ++j) {
    ExpectClose(whole.power_sums[j], left.power_sums[j], 1e-9);
    ExpectClose(whole.log_sums[j], left.log_sums[j], 1e-9);
  }
}

TEST(MaxEntSolverTest, UniformQuantilesAreAccurate) {
  std::vector<double> xs = UniformSample(20000, 0.0, 10.0, 17);
  MomentSketch sketch = MomentSketch::FromValues(xs, 10);
  for (double phi : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    ASSERT_OK_AND_ASSIGN(double q, EstimateQuantile(sketch, phi));
    // Uniform is max-entropy's home turf: tight accuracy.
    EXPECT_NEAR(q, 10.0 * phi, 0.15) << "phi = " << phi;
  }
}

TEST(MaxEntSolverTest, GaussianLikeQuantiles) {
  Rng rng(23);
  std::vector<double> xs(20000);
  for (double& x : xs) x = 50.0 + 10.0 * rng.NextGaussian();
  MomentSketch sketch = MomentSketch::FromValues(xs, 10);
  ASSERT_OK_AND_ASSIGN(double median, EstimateQuantile(sketch, 0.5));
  EXPECT_NEAR(median, TrueQuantile(xs, 0.5), 1.0);
  ASSERT_OK_AND_ASSIGN(double p90, EstimateQuantile(sketch, 0.9));
  EXPECT_NEAR(p90, TrueQuantile(xs, 0.9), 2.0);
}

TEST(MaxEntSolverTest, QuantilesAreMonotone) {
  std::vector<double> xs = UniformSample(5000, 2.0, 8.0, 29);
  MomentSketch sketch = MomentSketch::FromValues(xs, 8);
  double prev = -HUGE_VAL;
  for (double phi = 0.05; phi < 1.0; phi += 0.05) {
    ASSERT_OK_AND_ASSIGN(double q, EstimateQuantile(sketch, phi));
    EXPECT_GE(q, prev - 1e-9);
    prev = q;
  }
}

TEST(MaxEntSolverTest, DegenerateInputs) {
  MomentSketch empty(4);
  EXPECT_FALSE(EstimateQuantile(empty, 0.5).ok());

  MomentSketch single(4);
  single.Add(7.0);
  ASSERT_OK_AND_ASSIGN(double q, EstimateQuantile(single, 0.5));
  EXPECT_DOUBLE_EQ(q, 7.0);

  MomentSketch constant(4);
  constant.Add(3.0);
  constant.Add(3.0);
  ASSERT_OK_AND_ASSIGN(double qc, EstimateQuantile(constant, 0.5));
  EXPECT_DOUBLE_EQ(qc, 3.0);

  MomentSketch two(4);
  two.Add(1.0);
  two.Add(2.0);
  EXPECT_FALSE(EstimateQuantile(two, 0.0).ok());
  EXPECT_FALSE(EstimateQuantile(two, 1.0).ok());
}

TEST(MaxEntSolverTest, DensityIntegratesToOne) {
  std::vector<double> xs = UniformSample(2000, 1.0, 5.0, 31);
  MomentSketch sketch = MomentSketch::FromValues(xs, 6);
  ASSERT_OK_AND_ASSIGN(
      std::vector<double> density,
      MaxEntDensity(sketch.min, sketch.max, sketch.count,
                    sketch.power_sums));
  double total = 0.0;
  for (double p : density) total += p;
  ExpectClose(1.0, total, 1e-9);
}

TEST(NativeQuantileUdafTest, StateTemplatesCoverTheSketch) {
  std::vector<std::string> exprs = MomentSketchStateExprs("price", 5);
  // min, max, count + 5 power sums + 5 log sums.
  EXPECT_EQ(exprs.size(), 13u);
  EXPECT_EQ(exprs[0], "min(price)");
  EXPECT_EQ(exprs[3], "sum(price^1)");
  EXPECT_NE(exprs[8].find("ln(abs(price))"), std::string::npos);
}

TEST(NativeQuantileUdafTest, TerminateMatchesDirectSolver) {
  std::vector<double> xs = UniformSample(3000, 0.0, 4.0, 37);
  MomentSketch sketch = MomentSketch::FromValues(xs, 6);

  NativeUdaf udaf = MakeApproxQuantileUdaf("approx_median", 0.5, 6);
  std::vector<double> states = {sketch.min, sketch.max, sketch.count};
  for (double s : sketch.power_sums) states.push_back(s);
  for (double s : sketch.log_sums) states.push_back(s);
  ASSERT_OK_AND_ASSIGN(double via_udaf, udaf.terminate(states));
  ASSERT_OK_AND_ASSIGN(double direct, EstimateQuantile(sketch, 0.5));
  ExpectClose(direct, via_udaf, 1e-12);
}

TEST(NativeQuantileUdafTest, HardcodedIumeVersionAgrees) {
  UdafRegistry registry;
  RegisterHardcodedQuantileUdafs(&registry, 6);
  ASSERT_OK_AND_ASSIGN(const Udaf* udaf, registry.Get("approx_median"));

  std::vector<double> xs = UniformSample(3000, 0.0, 4.0, 41);
  std::vector<Value> state = udaf->Initialize();
  for (double x : xs) udaf->Update(&state, {Value(x)});
  ASSERT_OK_AND_ASSIGN(Value result, udaf->Evaluate(state));

  MomentSketch sketch = MomentSketch::FromValues(xs, 6);
  ASSERT_OK_AND_ASSIGN(double direct, EstimateQuantile(sketch, 0.5));
  // The IUME baseline runs the solver on a coarser grid (like the cheap
  // built-in approximations it models), so allow grid-resolution slack.
  ExpectClose(direct, result.AsDouble(), 2e-2);
}

}  // namespace
}  // namespace sudaf

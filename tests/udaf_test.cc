// Tests for the hardcoded (IUME) UDAF library: each implementation against a
// directly computed reference, plus the merge-correctness property that
// distributed execution depends on.

#include <cmath>
#include <numeric>

#include "agg/udaf.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

using testing_util::ExpectClose;

class HardcodedUdafTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterHardcodedUdafs(&registry_); }

  // Runs `name` over (x[, y]) row-at-a-time, single state.
  double Run(const std::string& name, const std::vector<double>& x,
             const std::vector<double>& y = {}) {
    auto udaf_result = registry_.Get(name);
    SUDAF_CHECK(udaf_result.ok());
    const Udaf* udaf = *udaf_result;
    std::vector<Value> state = udaf->Initialize();
    for (size_t i = 0; i < x.size(); ++i) {
      std::vector<Value> args = {Value(x[i])};
      if (udaf->num_args() == 2) args.push_back(Value(y[i]));
      udaf->Update(&state, args);
    }
    auto value = udaf->Evaluate(state);
    SUDAF_CHECK(value.ok());
    return value->AsDouble();
  }

  // Runs `name` split into two partitions merged with Udaf::Merge.
  double RunMerged(const std::string& name, const std::vector<double>& x) {
    auto udaf_result = registry_.Get(name);
    SUDAF_CHECK(udaf_result.ok());
    const Udaf* udaf = *udaf_result;
    std::vector<Value> s1 = udaf->Initialize();
    std::vector<Value> s2 = udaf->Initialize();
    for (size_t i = 0; i < x.size(); ++i) {
      udaf->Update(i % 2 == 0 ? &s1 : &s2, {Value(x[i])});
    }
    udaf->Merge(&s1, s2);
    auto value = udaf->Evaluate(s1);
    SUDAF_CHECK(value.ok());
    return value->AsDouble();
  }

  UdafRegistry registry_;
};

const std::vector<double> kX = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};

TEST_F(HardcodedUdafTest, SumCountAvgMinMax) {
  ExpectClose(40.0, Run("sum", kX));
  ExpectClose(8.0, Run("count", kX));
  ExpectClose(5.0, Run("avg", kX));
  ExpectClose(2.0, Run("min", kX));
  ExpectClose(9.0, Run("max", kX));
}

TEST_F(HardcodedUdafTest, VarAndStddev) {
  // Classic textbook multiset: population variance 4, stddev 2.
  ExpectClose(4.0, Run("var", kX));
  ExpectClose(2.0, Run("stddev", kX));
}

TEST_F(HardcodedUdafTest, PowerMeans) {
  auto power_mean = [](const std::vector<double>& x, double p) {
    double s = 0.0;
    for (double v : x) s += std::pow(v, p);
    return std::pow(s / x.size(), 1.0 / p);
  };
  ExpectClose(power_mean(kX, 2.0), Run("qm", kX));
  ExpectClose(power_mean(kX, 3.0), Run("cm", kX));
  ExpectClose(power_mean(kX, 4.0), Run("apm", kX));
  ExpectClose(power_mean(kX, -1.0), Run("hm", kX));
}

TEST_F(HardcodedUdafTest, GeometricMean) {
  double log_sum = 0.0;
  for (double v : kX) log_sum += std::log(v);
  ExpectClose(std::exp(log_sum / kX.size()), Run("gm", kX));
}

TEST_F(HardcodedUdafTest, GeometricMeanWithNegativesKeepsSign) {
  // An even number of negatives: positive result; odd: negative.
  ExpectClose(-2.0, Run("gm", {-2.0, 2.0, -2.0, -2.0, 2.0}), 1e-9);
}

TEST_F(HardcodedUdafTest, SkewnessAndKurtosis) {
  auto moment = [](const std::vector<double>& x, int k) {
    double mean = std::accumulate(x.begin(), x.end(), 0.0) / x.size();
    double m = 0.0;
    for (double v : x) m += std::pow(v - mean, k);
    return m / x.size();
  };
  double var = moment(kX, 2);
  ExpectClose(moment(kX, 3) / std::pow(var, 1.5), Run("skewness", kX), 1e-8);
  ExpectClose(moment(kX, 4) / (var * var), Run("kurtosis", kX), 1e-8);
}

TEST_F(HardcodedUdafTest, Theta1MatchesLeastSquares) {
  // y = 3x + 1 exactly => slope 3.
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {4, 7, 10, 13, 16};
  ExpectClose(3.0, Run("theta1", x, y));
}

TEST_F(HardcodedUdafTest, CovarianceAndCorrelation) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {2, 4, 6, 8};
  ExpectClose(2.5, Run("covar", x, y));   // population covariance of x,2x
  ExpectClose(1.0, Run("corr", x, y), 1e-9);
}

TEST_F(HardcodedUdafTest, LogSumExp) {
  std::vector<double> x = {0.0, 1.0, 2.0};
  double expected = std::log(std::exp(0.0) + std::exp(1.0) + std::exp(2.0));
  ExpectClose(expected, Run("logsumexp", x));
}

// Merge must be equivalent to a single pass (the commutative/associative
// contract the user is responsible for in real engines).
class UdafMergeTest : public HardcodedUdafTest,
                      public ::testing::WithParamInterface<const char*> {};

TEST_P(UdafMergeTest, MergeEqualsSinglePass) {
  Rng rng(99);
  std::vector<double> x(257);
  for (double& v : x) v = rng.NextDoubleIn(0.5, 9.5);
  ExpectClose(Run(GetParam(), x), RunMerged(GetParam(), x), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllSingleColumnUdafs, UdafMergeTest,
    ::testing::Values("sum", "count", "avg", "min", "max", "var", "stddev",
                      "qm", "cm", "apm", "hm", "gm", "skewness", "kurtosis",
                      "logsumexp"));

TEST_F(HardcodedUdafTest, RegistryRejectsDuplicates) {
  UdafRegistry fresh;
  RegisterHardcodedUdafs(&fresh);
  EXPECT_FALSE(fresh.Get("no_such_udaf").ok());
  EXPECT_TRUE(fresh.Has("qm"));
  EXPECT_GE(fresh.Names().size(), 15u);
}

}  // namespace
}  // namespace sudaf

// Tests for sudaf/sharing: the Theorem 4.1 decision procedure, the Table 3
// case analysis, the class/representative machinery, and numeric property
// checks of every returned r function (Definition 3.1: s1(X) = r(s2(X))).

#include <cmath>

#include "common/rng.h"
#include "expr/evaluator.h"
#include "expr/parser.h"
#include "gtest/gtest.h"
#include "sudaf/sharing.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

using testing_util::ExpectClose;

AggStateDef State(AggOp op, const std::string& input) {
  auto expr = ParseExpression(input);
  SUDAF_CHECK_MSG(expr.ok(), expr.status().ToString());
  return MakeState(op, std::move(*expr));
}

// Directly evaluates a state over a multiset (reference semantics).
double EvalState(const AggStateDef& state, const std::vector<double>& xs) {
  if (state.op == AggOp::kCount) return static_cast<double>(xs.size());
  double acc = state.op == AggOp::kProd ? 1.0 : 0.0;
  if (state.op == AggOp::kMin) acc = HUGE_VAL;
  if (state.op == AggOp::kMax) acc = -HUGE_VAL;
  for (double x : xs) {
    RowAccessor accessor = [x](const std::string& col,
                               int64_t) -> Result<Value> {
      if (col == "x") return Value(x);
      return Status::NotFound(col);
    };
    auto v = EvalRow(*state.input, accessor, 0);
    SUDAF_CHECK_MSG(v.ok(), v.status().ToString());
    switch (state.op) {
      case AggOp::kSum:
        acc += v->AsDouble();
        break;
      case AggOp::kProd:
        acc *= v->AsDouble();
        break;
      case AggOp::kMin:
        acc = std::min(acc, v->AsDouble());
        break;
      case AggOp::kMax:
        acc = std::max(acc, v->AsDouble());
        break;
      default:
        break;
    }
  }
  return acc;
}

// Asserts share(s1, s2) holds and that r reproduces s1 from s2 numerically.
void ExpectShares(const AggStateDef& s1, const AggStateDef& s2,
                  const std::vector<double>& xs, double tol = 1e-9) {
  std::optional<SharedComputation> r = Share(s1, s2);
  ASSERT_TRUE(r.has_value()) << s1.ToString() << " should share "
                             << s2.ToString();
  double direct = EvalState(s1, xs);
  double via = r->Apply(EvalState(s2, xs));
  ExpectClose(direct, via, tol);
}

void ExpectNoShare(const AggStateDef& s1, const AggStateDef& s2) {
  EXPECT_FALSE(Share(s1, s2).has_value())
      << s1.ToString() << " must not share " << s2.ToString();
}

const std::vector<double> kPositive = {0.5, 1.5, 2.0, 3.25, 7.0};

// --- Theorem 4.1, case 2.1 (Σ, Σ) --------------------------------------------

TEST(SharingTest, Case21LinearCoefficient) {
  ExpectShares(State(AggOp::kSum, "4*x"), State(AggOp::kSum, "x"), kPositive);
  ExpectShares(State(AggOp::kSum, "x"), State(AggOp::kSum, "4*x"), kPositive);
}

TEST(SharingTest, Example51) {
  // Σ4x² shares Σ(3x)² with r(x) = (4/9)x.
  std::optional<SharedComputation> r =
      Share(State(AggOp::kSum, "4*x^2"), State(AggOp::kSum, "(3*x)^2"));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->r.family, ShapeFamily::kPower);
  ExpectClose(4.0 / 9.0, r->r.a);
  ExpectClose(1.0, r->r.p);
  ExpectShares(State(AggOp::kSum, "4*x^2"), State(AggOp::kSum, "(3*x)^2"),
               kPositive);
}

TEST(SharingTest, Example52GeneralProperty) {
  // Σ a2·x^a1 shares Σ (b1·x)^b2 iff a1 = b2 — the symbolic relationship
  // the paper precomputes once.
  ExpectShares(State(AggOp::kSum, "6*x^3"), State(AggOp::kSum, "(5*x)^3"),
               kPositive);
  ExpectNoShare(State(AggOp::kSum, "6*x^3"), State(AggOp::kSum, "(5*x)^2"));
}

TEST(SharingTest, DifferentPowersDoNotShare) {
  ExpectNoShare(State(AggOp::kSum, "x"), State(AggOp::kSum, "x^2"));
  ExpectNoShare(State(AggOp::kSum, "x^2"), State(AggOp::kSum, "x"));
}

// --- Theorem 4.1, case 2.2 (Σ, Π) ---------------------------------------------

TEST(SharingTest, Case22SumLogFromProduct) {
  // Σ ln x = ln(Π x): r(x) = ln|x|.
  ExpectShares(State(AggOp::kSum, "ln(x)"), State(AggOp::kProd, "x"),
               kPositive);
  // And with bases/coefficients: Σ log_2(x) from Π x.
  ExpectShares(State(AggOp::kSum, "log(2, x)"), State(AggOp::kProd, "x"),
               kPositive);
}

TEST(SharingTest, Example42) {
  // Σ 4x shares Π 2^x with r(x) = 4·log_2(x).
  std::optional<SharedComputation> r =
      Share(State(AggOp::kSum, "4*x"), State(AggOp::kProd, "2^x"));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->r.family, ShapeFamily::kLog);
  // 4·log_2(x) = (4/ln 2)·ln x.
  ExpectClose(4.0 / std::log(2.0), r->r.a);
  ExpectShares(State(AggOp::kSum, "4*x"), State(AggOp::kProd, "2^x"),
               {0.5, 1.0, 2.0, 3.0}, 1e-8);
}

// --- Theorem 4.1, case 2.3 (Π, Σ) ---------------------------------------------

TEST(SharingTest, Case23ProductFromSumLog) {
  // Π x = e^(Σ ln x).
  ExpectShares(State(AggOp::kProd, "x"), State(AggOp::kSum, "ln(x)"),
               kPositive, 1e-8);
  // Π 2^x = 2^(Σ x).
  ExpectShares(State(AggOp::kProd, "2^x"), State(AggOp::kSum, "x"),
               {0.5, 1.0, 2.0}, 1e-9);
}

TEST(SharingTest, GeometricMeanMomentSketchBullet) {
  // Section 2, third bullet: Π x_i of geometric mean can be computed from
  // the moments-sketch element Σ ln(x_i).
  ExpectShares(State(AggOp::kProd, "x"), State(AggOp::kSum, "ln(x)"),
               {1.5, 2.5, 0.75}, 1e-9);
}

TEST(SharingTest, Case23RequiresUnitCoefficient) {
  // Π 3·2^x = 3^n · 2^Σx depends on n: not shareable from Σx alone.
  ExpectNoShare(State(AggOp::kProd, "3 * 2^x"), State(AggOp::kSum, "x"));
}

// --- Theorem 4.1, case 2.4 (Π, Π) ---------------------------------------------

TEST(SharingTest, Case24EvenPower) {
  // Π x² = |Π x|² (case 2.4(i)).
  ExpectShares(State(AggOp::kProd, "x^2"), State(AggOp::kProd, "x"),
               {-2.0, 3.0, -0.5, 1.5}, 1e-9);
}

TEST(SharingTest, Case24OddPowerKeepsSign) {
  // Π x³ = sgn(Πx)·|Πx|³ (case 2.4(ii)) — verified on a negative product.
  ExpectShares(State(AggOp::kProd, "x^3"), State(AggOp::kProd, "x"),
               {-2.0, 3.0, 1.5}, 1e-9);
}

TEST(SharingTest, Case1OddFromEvenLosesSign) {
  // Π x from Π x²: f1 injective, f2 even — sign unrecoverable (case 1).
  ExpectNoShare(State(AggOp::kProd, "x"), State(AggOp::kProd, "x^2"));
  // Likewise Σx³ from Σx².
  ExpectNoShare(State(AggOp::kSum, "x^3"), State(AggOp::kSum, "x^2"));
}

TEST(SharingTest, Case3EvenEvenReducesToPositiveDomain) {
  // Both even: Σ 4x² shares Σ x² — and the r holds on mixed-sign input.
  ExpectShares(State(AggOp::kSum, "4*x^2"), State(AggOp::kSum, "x^2"),
               {-1.0, 2.0, -3.0});
}

// --- count / min / max / opaque -----------------------------------------------

TEST(SharingTest, CountSharesOnlyCount) {
  AggStateDef count = MakeState(AggOp::kCount, nullptr);
  AggStateDef count2 = MakeState(AggOp::kCount, nullptr);
  EXPECT_TRUE(Share(count, count2).has_value());
  ExpectNoShare(count, State(AggOp::kSum, "x"));
  ExpectNoShare(State(AggOp::kSum, "x"), count);
}

TEST(SharingTest, MinMaxShareThemselvesOnly) {
  EXPECT_TRUE(
      Share(State(AggOp::kMin, "x"), State(AggOp::kMin, "x")).has_value());
  ExpectNoShare(State(AggOp::kMin, "x"), State(AggOp::kMax, "x"));
  ExpectNoShare(State(AggOp::kMin, "x"), State(AggOp::kMin, "x^2"));
}

TEST(SharingTest, DifferentBaseColumnsNeverShare) {
  ExpectNoShare(State(AggOp::kSum, "x"), State(AggOp::kSum, "y"));
  ExpectNoShare(State(AggOp::kSum, "x*y"), State(AggOp::kSum, "x"));
}

TEST(SharingTest, LogPowStates) {
  // Σ 3(ln x)² shares Σ (ln x)² (the moments-sketch log moments).
  ExpectShares(State(AggOp::kSum, "3*ln(x)^2"), State(AggOp::kSum, "ln(x)^2"),
               kPositive);
  // But Σ ln x does not share Σ (ln x)² (and vice versa).
  ExpectNoShare(State(AggOp::kSum, "ln(x)"), State(AggOp::kSum, "ln(x)^2"));
  ExpectNoShare(State(AggOp::kSum, "ln(x)^2"), State(AggOp::kSum, "ln(x)"));
}

TEST(SharingTest, SharingIsReflexiveViaSyntacticFallback) {
  // Opaque states (outside PS∘) still share themselves syntactically.
  AggStateDef odd = State(AggOp::kSum, "ln(x) * x");
  EXPECT_FALSE(odd.norm.has_value());
  EXPECT_TRUE(Share(odd, odd.Clone()).has_value());
  ExpectNoShare(odd, State(AggOp::kSum, "x"));
}

// --- Classes & representatives -------------------------------------------------

TEST(ClassifyTest, PowerSumsClassByExponent) {
  StateClass a = ClassifyState(State(AggOp::kSum, "4*x^2"));
  StateClass b = ClassifyState(State(AggOp::kSum, "(3*x)^2"));
  StateClass c = ClassifyState(State(AggOp::kSum, "x^3"));
  EXPECT_EQ(a.key, b.key);
  EXPECT_NE(a.key, c.key);
  EXPECT_EQ(a.rep.ToString(), "sum(x^2)");
  EXPECT_FALSE(a.log_domain);
}

TEST(ClassifyTest, LogClassUnitesSumLogAndProducts) {
  StateClass log_state = ClassifyState(State(AggOp::kSum, "3*ln(x)"));
  StateClass prod_state = ClassifyState(State(AggOp::kProd, "x"));
  StateClass prod_pow = ClassifyState(State(AggOp::kProd, "x^2"));
  EXPECT_EQ(log_state.key, prod_state.key);
  EXPECT_EQ(log_state.key, prod_pow.key);
  EXPECT_TRUE(log_state.log_domain);
  EXPECT_EQ(log_state.rep.op, AggOp::kSum);
}

TEST(ClassifyTest, ProdOfExponentialsMapsToPlainSum) {
  StateClass cls = ClassifyState(State(AggOp::kProd, "exp(x)"));
  EXPECT_EQ(cls.key, ClassifyState(State(AggOp::kSum, "x")).key);
  EXPECT_FALSE(cls.log_domain);
}

TEST(ClassifyTest, CountAndMinMax) {
  EXPECT_EQ(ClassifyState(MakeState(AggOp::kCount, nullptr)).key, "count");
  StateClass mn = ClassifyState(State(AggOp::kMin, "x"));
  StateClass mx = ClassifyState(State(AggOp::kMax, "x"));
  EXPECT_NE(mn.key, mx.key);
}

TEST(ClassifyTest, MainInputUsesAbsForLogDomain) {
  StateClass cls = ClassifyState(State(AggOp::kProd, "x"));
  ASSERT_TRUE(cls.log_domain);
  EXPECT_NE(cls.MainInputExpr()->ToString().find("abs"), std::string::npos);
  EXPECT_NE(cls.SignInputExpr()->ToString().find("sgn"), std::string::npos);
}

TEST(ClassifyTest, ReconstructionThroughLogChannels) {
  // Cache channels for class [Σ ln x] over mixed-sign data:
  // L = Σ ln|x|, S = Π sgn x. Reconstruct Π x and Σ ln(x²).
  const std::vector<double> xs = {-2.0, 3.0, -1.5, 0.5};
  double L = 0.0;
  double S = 1.0;
  for (double x : xs) {
    L += std::log(std::fabs(x));
    S *= x > 0 ? 1.0 : -1.0;
  }

  AggStateDef prod = State(AggOp::kProd, "x");
  StateClass cls = ClassifyState(prod);
  std::optional<SharedComputation> fn = Share(prod, cls.rep);
  ASSERT_TRUE(fn.has_value());
  double reconstructed = ApplyFromClass(prod, cls, *fn, L, S);
  ExpectClose(EvalState(prod, xs), reconstructed, 1e-9);

  // Σ ln(x²) = 2·Σ ln|x| — the Section 5.3 example.
  AggStateDef ln_sq = State(AggOp::kSum, "ln(x^2)");
  StateClass cls2 = ClassifyState(ln_sq);
  EXPECT_EQ(cls2.key, cls.key);
  std::optional<SharedComputation> fn2 = Share(ln_sq, cls2.rep);
  ASSERT_TRUE(fn2.has_value());
  ExpectClose(2.0 * L, ApplyFromClass(ln_sq, cls2, *fn2, L, S), 1e-9);
  ExpectClose(EvalState(ln_sq, xs), 2.0 * L, 1e-9);
}

TEST(ClassifyTest, EveryClassRepSharesItsMembers) {
  // For a spread of states, Share(state, ClassifyState(state).rep) must
  // succeed — the invariant the cache relies on.
  const char* kStates[] = {"x",        "4*x",      "x^2",     "7*x^3",
                           "ln(x)",    "3*ln(x)",  "exp(x)",  "2*exp(3*x)",
                           "ln(x)^2",  "sqrt(x)",  "x^-1",    "2^x"};
  for (const char* s : kStates) {
    AggStateDef state = State(AggOp::kSum, s);
    StateClass cls = ClassifyState(state);
    EXPECT_TRUE(Share(state, cls.rep).has_value())
        << "Σ " << s << " vs rep " << cls.rep.ToString();
  }
}

// --- Property sweep: every positive Share() answer is numerically correct ---

struct SharePair {
  AggOp op1;
  const char* f1;
  AggOp op2;
  const char* f2;
};

class ShareNumericProperty : public ::testing::TestWithParam<SharePair> {};

TEST_P(ShareNumericProperty, RFunctionIsExact) {
  const SharePair& p = GetParam();
  AggStateDef s1 = State(p.op1, p.f1);
  AggStateDef s2 = State(p.op2, p.f2);
  std::optional<SharedComputation> r = Share(s1, s2);
  ASSERT_TRUE(r.has_value());
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> xs(1 + rng.NextBelow(8));
    for (double& x : xs) x = rng.NextDoubleIn(0.25, 3.0);
    ExpectClose(EvalState(s1, xs), r->Apply(EvalState(s2, xs)), 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(
    TheoremInstances, ShareNumericProperty,
    ::testing::Values(
        SharePair{AggOp::kSum, "5*x", AggOp::kSum, "2*x"},
        SharePair{AggOp::kSum, "x^2", AggOp::kSum, "3*x^2"},
        SharePair{AggOp::kSum, "0.5*x^-1", AggOp::kSum, "x^-1"},
        SharePair{AggOp::kSum, "ln(x)", AggOp::kProd, "x"},
        SharePair{AggOp::kSum, "ln(x)", AggOp::kProd, "x^3"},
        SharePair{AggOp::kSum, "log(2, x)", AggOp::kProd, "x"},
        SharePair{AggOp::kSum, "x", AggOp::kProd, "2^x"},
        SharePair{AggOp::kProd, "x", AggOp::kSum, "ln(x)"},
        SharePair{AggOp::kProd, "exp(x)", AggOp::kSum, "x"},
        SharePair{AggOp::kProd, "x^2", AggOp::kProd, "x"},
        SharePair{AggOp::kProd, "x^2", AggOp::kProd, "x^4"},
        SharePair{AggOp::kSum, "exp(2*x)", AggOp::kSum, "3*exp(2*x)"},
        SharePair{AggOp::kSum, "ln(x)^3", AggOp::kSum, "5*ln(x)^3"},
        SharePair{AggOp::kSum, "sqrt(x)", AggOp::kSum, "4*sqrt(x)"}));

// Σ ln x from Π 4x: f2 = 4x under Π is 4^n·Πx... the canonicalizer would
// split the 4 out; called directly, Theorem 4.1 still answers correctly
// because f1∘f2⁻¹ = ln(x/4) has an offset — no sharing.
TEST(SharingTest, OffsetLogIsRejected) {
  ExpectNoShare(State(AggOp::kSum, "ln(x)"), State(AggOp::kProd, "4*x"));
}

}  // namespace
}  // namespace sudaf

// End-to-end thread-count determinism of the parallel pipeline.
//
// The contract (docs/execution.md): every parallel stage — WHERE filter,
// column gather, two-phase grouping, and the fused chunk-tree accumulation
// — produces results that are BITWISE identical at every thread count,
// including the serial path, for a fixed morsel size. Parallelism may only
// change wall-clock time, never a single output bit: selection vectors are
// written in row order via prefix-summed offsets, global group ids are
// assigned in first-occurrence row order by a deterministic merge, and the
// accumulation tree's shape is a pure function of input size and morsel
// size (never the worker count).
//
// These tests run under the TSan CI shard (tools/check.sh re-runs
// ParallelPipelineTest.* in the tsan build), so they double as the data-race
// gate for the pipeline stages.

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/executor.h"
#include "gtest/gtest.h"
#include "sql/statement.h"
#include "sudaf/session.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

// 60k rows / morsel_size 1024 → ~59 morsels, so every stage actually
// splits: multi-range filter + gather + grouping and a multi-chunk fused
// accumulation tree.
constexpr int64_t kRows = 60000;
constexpr int kMorsel = 1024;

Catalog MakeCatalog() {
  Rng rng(20260808);
  std::vector<int64_t> g;
  std::vector<double> x;
  std::vector<double> y;
  for (int64_t i = 0; i < kRows; ++i) {
    g.push_back(static_cast<int64_t>(rng.NextBelow(211)));
    x.push_back(rng.NextDoubleIn(0.25, 4.0));
    y.push_back(rng.NextDoubleIn(-2.0, 2.0));
  }
  Catalog catalog;
  catalog.PutTable("t", testing_util::MakeXyTable(g, x, y));
  return catalog;
}

ExecOptions OptsFor(int threads) {
  ExecOptions opts;
  opts.parallel = threads > 1;
  opts.num_threads = threads;
  opts.morsel_size = kMorsel;
  return opts;
}

// Bitwise table equality: FLOAT64 cells compare as bit patterns (so -0.0
// vs 0.0 or any ulp of drift fails), not within a tolerance.
void ExpectTablesBitIdentical(const Table& a, const Table& b,
                              const std::string& context) {
  ASSERT_EQ(a.num_rows(), b.num_rows()) << context;
  ASSERT_EQ(a.num_columns(), b.num_columns()) << context;
  for (int c = 0; c < a.num_columns(); ++c) {
    ASSERT_EQ(a.schema().field(c).name, b.schema().field(c).name) << context;
    ASSERT_EQ(a.column(c).type(), b.column(c).type()) << context;
    for (int64_t r = 0; r < a.num_rows(); ++r) {
      switch (a.column(c).type()) {
        case DataType::kInt64:
          ASSERT_EQ(a.column(c).GetInt64(r), b.column(c).GetInt64(r))
              << context << " col " << c << " row " << r;
          break;
        case DataType::kString:
          ASSERT_EQ(a.column(c).GetString(r), b.column(c).GetString(r))
              << context << " col " << c << " row " << r;
          break;
        case DataType::kFloat64: {
          double da = a.column(c).GetFloat64(r);
          double db = b.column(c).GetFloat64(r);
          ASSERT_EQ(0, std::memcmp(&da, &db, sizeof(double)))
              << context << " col " << c << " row " << r << ": " << da
              << " vs " << db;
          break;
        }
      }
    }
  }
}

// Executor::Prepare — the filter/gather/group stages in isolation — must
// produce a bitwise-identical frame, identical group ids, and identical
// group-key row order at every thread count (1 = the serial reference).
TEST(ParallelPipelineTest, PrepareIsThreadCountInvariant) {
  Catalog catalog = MakeCatalog();
  UdafRegistry registry;
  Executor executor(&catalog, &registry);
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<SelectStatement> stmt,
      ParseSelect("SELECT g, sum(x) FROM t WHERE x > 0.5 AND y < 1.5 "
                  "GROUP BY g"));

  ASSERT_OK_AND_ASSIGN(PreparedInput serial,
                       executor.Prepare(*stmt, {"y"}, OptsFor(1)));
  ASSERT_GT(serial.num_input_rows, 0);
  ASSERT_LT(serial.num_input_rows, kRows);  // the WHERE actually filtered
  ASSERT_GT(serial.num_groups, 1);

  for (int threads : {2, 8}) {
    ASSERT_OK_AND_ASSIGN(PreparedInput par,
                         executor.Prepare(*stmt, {"y"}, OptsFor(threads)));
    std::string ctx = "threads=" + std::to_string(threads);
    ASSERT_EQ(par.num_input_rows, serial.num_input_rows) << ctx;
    ASSERT_EQ(par.num_groups, serial.num_groups) << ctx;
    ASSERT_EQ(par.group_ids, serial.group_ids) << ctx;
    ExpectTablesBitIdentical(*serial.frame, *par.frame, ctx + " frame");
    ExpectTablesBitIdentical(*serial.group_keys, *par.group_keys,
                             ctx + " group_keys");
  }
}

// Full-query invariance in every execution mode: grouped, grouped + WHERE,
// and ungrouped (+ WHERE) queries return bitwise-identical tables at
// num_threads ∈ {1, 2, 8}, and the derived ExecStats describe the same
// work (state counts, group counts — everything but the timings).
TEST(ParallelPipelineTest, QueriesAreThreadCountInvariant) {
  Catalog catalog = MakeCatalog();
  const std::vector<std::string> queries = {
      "SELECT g, kurtosis(x), var(x), sum(x*y) FROM t GROUP BY g",
      "SELECT g, skewness(x), count(x) FROM t WHERE x > 1.0 GROUP BY g",
      "SELECT sum(x), var(y), count(x) FROM t WHERE y > -1.0",
      "SELECT g, gm(x), hm(x) FROM t WHERE g < 100 GROUP BY g "
      "ORDER BY g LIMIT 50",
  };
  for (ExecMode mode :
       {ExecMode::kEngine, ExecMode::kSudafNoShare, ExecMode::kSudafShare}) {
    for (const std::string& sql : queries) {
      // A fresh session per run keeps the cache cold, so every thread count
      // computes its states from scratch (identical stats, not cache hits).
      SudafSession ref_session(&catalog, OptsFor(1));
      ASSERT_OK_AND_ASSIGN(QueryResult ref, ref_session.Execute(sql, mode));
      for (int threads : {2, 8}) {
        SudafSession session(&catalog, OptsFor(threads));
        ASSERT_OK_AND_ASSIGN(QueryResult got, session.Execute(sql, mode));
        std::string ctx = sql + " threads=" + std::to_string(threads);
        ExpectTablesBitIdentical(*ref.table, *got.table, ctx);
        EXPECT_EQ(got.stats.num_states, ref.stats.num_states) << ctx;
        EXPECT_EQ(got.stats.states_computed, ref.stats.states_computed)
            << ctx;
        EXPECT_EQ(got.stats.used_fused, ref.stats.used_fused) << ctx;
        EXPECT_EQ(got.stats.morsels, ref.stats.morsels) << ctx;
        EXPECT_EQ(got.stats.fused_channels, ref.stats.fused_channels) << ctx;
      }
    }
  }
}

// Turning parallelism off entirely (parallel=false) is just "one worker"
// to the chunk tree: the serial path must agree bit-for-bit with the
// 8-thread run at the same morsel size.
TEST(ParallelPipelineTest, SerialPathIsTheOneWorkerCase) {
  Catalog catalog = MakeCatalog();
  ExecOptions serial;
  serial.morsel_size = kMorsel;  // parallel = false
  SudafSession a(&catalog, serial);
  SudafSession b(&catalog, OptsFor(8));
  const std::string sql =
      "SELECT g, kurtosis(x), sum(x^3) FROM t WHERE x < 3.5 GROUP BY g";
  ASSERT_OK_AND_ASSIGN(QueryResult ra, a.Execute(sql, ExecMode::kSudafShare));
  ASSERT_OK_AND_ASSIGN(QueryResult rb, b.Execute(sql, ExecMode::kSudafShare));
  ExpectTablesBitIdentical(*ra.table, *rb.table, "serial vs 8 threads");
}

// Repeated parallel runs of one fixed configuration are bitwise stable —
// dynamic chunk claiming must not leak scheduling order into values.
TEST(ParallelPipelineTest, RepeatedParallelRunsAreBitwiseStable) {
  Catalog catalog = MakeCatalog();
  const std::string q =
      "SELECT g, var(x), sum(x*y) FROM t WHERE y > -1.5 GROUP BY g";
  SudafSession first_session(&catalog, OptsFor(8));
  ASSERT_OK_AND_ASSIGN(QueryResult first,
                       first_session.Execute(q, ExecMode::kSudafNoShare));
  for (int run = 0; run < 3; ++run) {
    SudafSession session(&catalog, OptsFor(8));
    ASSERT_OK_AND_ASSIGN(QueryResult again,
                         session.Execute(q, ExecMode::kSudafNoShare));
    ExpectTablesBitIdentical(*first.table, *again.table,
                             "run " + std::to_string(run));
  }
}

// The pipeline's observability: phase spans nest under "input", the phase
// dcounters surface in ExecStats and ProfileJson, and the per-pass
// threads_used histogram drives ExecStats::fused_threads.
TEST(ParallelPipelineTest, PipelinePhasesAreObservable) {
  Catalog catalog = MakeCatalog();
  SudafSession session(&catalog, OptsFor(8));
  ASSERT_OK_AND_ASSIGN(
      QueryResult result,
      session.Execute("SELECT g, kurtosis(x) FROM t WHERE x > 0.5 GROUP BY g",
                      ExecMode::kSudafShare));
  ASSERT_NE(result.trace, nullptr);
  // The three pipeline stages recorded spans and their dcounter times are
  // the same measurement.
  EXPECT_DOUBLE_EQ(result.trace->SpanMs("filter"), result.stats.filter_ms);
  EXPECT_DOUBLE_EQ(result.trace->SpanMs("gather"), result.stats.gather_ms);
  EXPECT_DOUBLE_EQ(result.trace->SpanMs("group"), result.stats.group_ms);
  EXPECT_GE(result.stats.filter_ms, 0.0);
  // The fused pass recorded its worker count per pass.
  EXPECT_GE(result.stats.fused_threads, 1);
  EXPECT_GE(result.trace->EventCount("threads_used"), 1);
  std::string json = result.ProfileJson();
  for (const char* key : {"\"filter_ms\":", "\"gather_ms\":",
                          "\"group_ms\":", "\"threads_used\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

}  // namespace
}  // namespace sudaf

// Tests for shared-scan batch execution (docs/service.md, "Shared-scan
// batching"): SudafSession::ExecuteBatch fusing same-signature queries
// into one pass over a union state DAG, the QueryService batching window
// behind Submit()/QueryTicket, bit-identity of batched answers to serial
// one-at-a-time execution across batch windows and thread counts, the
// window-drop rules for cancelled/expired tickets, and the
// `coalesced + solo == admitted` counter identity.

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/query_guard.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "storage/catalog.h"
#include "sudaf/sudaf.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

// Overlapping-state queries over one signature (same table, no filter,
// same grouping): var + kurtosis + skewness + avg all reduce to the power
// sums count, Σx, Σx², Σx³, Σx⁴ — the Theorem 4.1 overlap the union DAG
// must compute exactly once.
std::vector<std::string> OverlappingQueries() {
  return {
      "SELECT g, avg(x), var(x) FROM t GROUP BY g",
      "SELECT g, kurtosis(x) FROM t GROUP BY g",
      "SELECT g, skewness(x), sum(x) FROM t GROUP BY g",
      "SELECT g, var(x), count(x) FROM t GROUP BY g",
      "SELECT g, stddev(x), sum(x*y) FROM t GROUP BY g",
  };
}

// Bit-exact digest of a result table.
std::string Fingerprint(const Table& t) {
  std::string fp;
  for (int c = 0; c < t.num_columns(); ++c) {
    for (int64_t r = 0; r < t.num_rows(); ++r) {
      if (t.column(c).type() == DataType::kInt64) {
        int64_t v = t.column(c).GetInt64(r);
        fp.append(reinterpret_cast<const char*>(&v), sizeof(v));
      } else {
        double v = t.column(c).GetFloat64(r);
        fp.append(reinterpret_cast<const char*>(&v), sizeof(v));
      }
    }
  }
  return fp;
}

class SharedScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<int64_t> g;
    std::vector<double> x;
    std::vector<double> y;
    Rng rng(4242);
    for (int i = 0; i < 500; ++i) {
      g.push_back(static_cast<int64_t>(rng.NextBelow(7)));
      x.push_back(rng.NextDoubleIn(0.5, 9.5));
      y.push_back(rng.NextDoubleIn(-2.0, 2.0));
    }
    catalog_.PutTable("t", testing_util::MakeXyTable(g, x, y));
  }

  // Serial one-at-a-time reference: one cold session executes the queries
  // in order (cache sharing between them is part of the contract being
  // mirrored — batched answers must match it bitwise).
  std::vector<std::string> SerialReference(const std::vector<std::string>& qs,
                                           ExecMode mode) {
    SudafSession ref(&catalog_);
    std::vector<std::string> want;
    for (const std::string& sql : qs) {
      auto r = ref.Execute(sql, mode);
      EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
      want.push_back(r.ok() ? Fingerprint(**r) : "");
    }
    return want;
  }

  Catalog catalog_;
};

// ---------------------------------------------------------------------------
// SudafSession::ExecuteBatch
// ---------------------------------------------------------------------------

TEST_F(SharedScanTest, BatchedAnswersMatchSerialAndDedupStates) {
  const std::vector<std::string> queries = OverlappingQueries();
  const std::vector<std::string> want =
      SerialReference(queries, ExecMode::kSudafShare);

  SudafSession session(&catalog_);
  BatchExecStats bstats;
  std::vector<Result<QueryResult>> results =
      session.ExecuteBatch(queries, ExecMode::kSudafShare, &bstats);
  ASSERT_EQ(results.size(), queries.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << queries[i] << ": "
                                 << results[i].status().ToString();
    EXPECT_EQ(Fingerprint(**results[i]), want[i])
        << "batched answer diverges for: " << queries[i];
    EXPECT_EQ(results[i]->stats.batch_size,
              static_cast<int>(queries.size()));
  }

  // One signature → one group, one scan; the other four scans are saved.
  EXPECT_EQ(bstats.queries, static_cast<int64_t>(queries.size()));
  EXPECT_EQ(bstats.groups_shared, 1);
  EXPECT_EQ(bstats.queries_coalesced, static_cast<int64_t>(queries.size()));
  EXPECT_EQ(bstats.queries_solo, 0);
  EXPECT_EQ(bstats.scan_passes, 1);
  EXPECT_EQ(bstats.scan_passes_saved,
            static_cast<int64_t>(queries.size()) - 1);
  // Theorem 4.1 overlap: the five queries request many states but the
  // union DAG computes the shared power sums once.
  EXPECT_GT(bstats.states_requested, 0);
  EXPECT_GT(bstats.states_deduped, 0);
}

TEST_F(SharedScanTest, MixedSignaturesSplitIntoGroupsAndSolo) {
  std::vector<std::string> queries = {
      "SELECT g, avg(x) FROM t GROUP BY g",            // group A
      "SELECT g, sum(y) FROM t WHERE x > 3.0 GROUP BY g",  // unique → solo
      "SELECT g, var(x) FROM t GROUP BY g",            // group A
  };
  const std::vector<std::string> want =
      SerialReference(queries, ExecMode::kSudafShare);

  SudafSession session(&catalog_);
  BatchExecStats bstats;
  auto results = session.ExecuteBatch(queries, ExecMode::kSudafShare, &bstats);
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
    EXPECT_EQ(Fingerprint(**results[i]), want[i]) << queries[i];
  }
  EXPECT_EQ(bstats.groups_shared, 1);
  EXPECT_EQ(bstats.queries_coalesced, 2);
  EXPECT_EQ(bstats.queries_solo, 1);
  // scan_passes counts only fused group passes; the solo query's scan is
  // accounted in its own per-query stats.
  EXPECT_EQ(bstats.scan_passes, 1);
  EXPECT_EQ(bstats.scan_passes_saved, 1);
}

TEST_F(SharedScanTest, NoShareAndEngineModesStayBitIdentical) {
  const std::vector<std::string> queries = OverlappingQueries();
  for (ExecMode mode : {ExecMode::kSudafNoShare, ExecMode::kEngine}) {
    const std::vector<std::string> want = SerialReference(queries, mode);
    SudafSession session(&catalog_);
    BatchExecStats bstats;
    auto results = session.ExecuteBatch(queries, mode, &bstats);
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
      EXPECT_EQ(Fingerprint(**results[i]), want[i])
          << "mode " << static_cast<int>(mode) << ": " << queries[i];
    }
    if (mode == ExecMode::kEngine) {
      // The engine path has no state DAG to share: everything runs solo.
      EXPECT_EQ(bstats.queries_coalesced, 0);
      EXPECT_EQ(bstats.queries_solo,
                static_cast<int64_t>(queries.size()));
    } else {
      // No-share mode still fuses the scan (direct states, no cache).
      EXPECT_EQ(bstats.queries_coalesced,
                static_cast<int64_t>(queries.size()));
      EXPECT_EQ(bstats.scan_passes, 1);
    }
  }
}

TEST_F(SharedScanTest, PerItemFailuresDoNotPoisonTheGroup) {
  std::vector<std::string> queries = {
      "SELECT g, avg(x) FROM t GROUP BY g",
      "SELECT g, nope(x) FROM t GROUP BY g",  // unknown aggregate
      "SELECT g, var(x) FROM t GROUP BY g",
  };
  const auto want = SerialReference({queries[0], queries[2]},
                                    ExecMode::kSudafShare);
  SudafSession session(&catalog_);
  auto results = session.ExecuteBatch(queries, ExecMode::kSudafShare);
  ASSERT_TRUE(results[0].ok()) << results[0].status().ToString();
  EXPECT_FALSE(results[1].ok());
  ASSERT_TRUE(results[2].ok()) << results[2].status().ToString();
  EXPECT_EQ(Fingerprint(**results[0]), want[0]);
  EXPECT_EQ(Fingerprint(**results[2]), want[1]);
}

// ---------------------------------------------------------------------------
// Service-level bit-identity matrix: batch window {off, 1, 8} × fused
// worker threads {1, 8}. Tickets are submitted first (they land in one
// window), then awaited in order — the first Wait() claims and runs the
// whole window, so group formation is deterministic.
// ---------------------------------------------------------------------------

TEST_F(SharedScanTest, WindowAndThreadMatrixIsBitIdentical) {
  const std::vector<std::string> queries = OverlappingQueries();
  const std::vector<std::string> want =
      SerialReference(queries, ExecMode::kSudafShare);

  struct WindowConfig {
    const char* name;
    double window_ms;
    int max_queries;
  };
  const WindowConfig windows[] = {
      {"off", 0.0, 8},      // batching disabled: every ticket runs solo
      {"max1", 50.0, 1},    // window open but size-1: solo as well
      {"max8", 50.0, 8},    // real batching: one group per signature
  };
  for (int threads : {1, 8}) {
    ExecOptions exec;
    exec.parallel = threads > 1;
    exec.num_threads = threads;
    for (const WindowConfig& w : windows) {
      SudafSession session(&catalog_, exec);
      ServiceOptions opts;
      opts.batch_window_ms = w.window_ms;
      opts.batch_max_queries = w.max_queries;
      QueryService service(&session, opts);

      std::vector<QueryTicket> tickets;
      for (const std::string& sql : queries) {
        tickets.push_back(service.Submit(sql, ExecMode::kSudafShare));
      }
      for (size_t i = 0; i < tickets.size(); ++i) {
        auto r = tickets[i].Wait();
        ASSERT_TRUE(r.ok()) << "threads=" << threads << " window=" << w.name
                            << ": " << r.status().ToString();
        EXPECT_EQ(Fingerprint(**r), want[i])
            << "threads=" << threads << " window=" << w.name << ": "
            << queries[i];
      }

      MetricsSnapshot snap = service.metrics().Snapshot();
      const int64_t n = static_cast<int64_t>(queries.size());
      // The invariant that makes the counters trustworthy: every admitted
      // request was either coalesced into a group or ran solo.
      EXPECT_EQ(snap.counter("sudaf.batch.coalesced") +
                    snap.counter("sudaf.batch.solo"),
                snap.counter("sudaf.service.admitted"));
      if (w.window_ms > 0 && w.max_queries > 1) {
        // All five tickets share one signature and one window: one pass.
        EXPECT_EQ(snap.counter("sudaf.batch.coalesced"), n);
        EXPECT_EQ(snap.counter("sudaf.batch.scan_passes"), 1);
        EXPECT_EQ(snap.counter("sudaf.batch.scan_passes_saved"), n - 1);
        EXPECT_GT(snap.counter("sudaf.batch.states_deduped"), 0);
      } else {
        EXPECT_EQ(snap.counter("sudaf.batch.coalesced"), 0);
        EXPECT_EQ(snap.counter("sudaf.batch.solo"), n);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// QueryTicket semantics
// ---------------------------------------------------------------------------

TEST_F(SharedScanTest, TicketWaitConsumesOnceAndTryGetNeverDrives) {
  SudafSession session(&catalog_);
  QueryService service(&session);
  QueryTicket ticket =
      service.Submit("SELECT g, avg(x) FROM t GROUP BY g",
                     ExecMode::kSudafShare);
  ASSERT_TRUE(ticket.valid());

  // TryGet before anyone drove the request: not finished, returns false.
  Result<QueryResult> peek{Status::Internal("unset")};
  EXPECT_FALSE(ticket.TryGet(&peek));

  auto r = ticket.Wait();
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  // The result was consumed by Wait(): both re-reads report that.
  EXPECT_FALSE(ticket.TryGet(&peek));
  auto again = ticket.Wait();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kInvalidArgument);

  // A default-constructed ticket is inert.
  QueryTicket empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_FALSE(empty.TryGet(&peek));
  EXPECT_FALSE(empty.Wait().ok());
}

// Regression (satellite): tickets cancelled or past their deadline while
// the window is open are dropped from the group BEFORE the pass forms —
// they never occupy a state slot, and the live members still coalesce.
TEST_F(SharedScanTest, CancelledAndExpiredTicketsAreDroppedFromTheWindow) {
  SudafSession session(&catalog_);
  ServiceOptions opts;
  opts.batch_window_ms = 60.0;
  opts.batch_max_queries = 8;
  QueryService service(&session, opts);

  const std::string sql = "SELECT g, avg(x) FROM t GROUP BY g";
  QueryGuard expired;
  expired.ArmDeadline(0.0);

  QueryTicket a = service.Submit(sql, ExecMode::kSudafShare);
  QueryTicket b = service.Submit(sql, ExecMode::kSudafShare);
  QueryTicket c = service.Submit("SELECT g, var(x) FROM t GROUP BY g",
                                 ExecMode::kSudafShare);
  ServiceRequest dead;
  dead.sql = sql;
  dead.guard = &expired;
  QueryTicket d = service.Submit(dead);

  b.Cancel();

  // b's own waiter observes the cancellation first (self-drop from the
  // window); then a's waiter claims the window, prunes d, and fuses {a, c}.
  auto rb = b.Wait();
  ASSERT_FALSE(rb.ok());
  EXPECT_EQ(rb.status().code(), StatusCode::kCancelled);

  auto ra = a.Wait();
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  auto rc = c.Wait();
  ASSERT_TRUE(rc.ok()) << rc.status().ToString();
  auto rd = d.Wait();
  ASSERT_FALSE(rd.ok());
  EXPECT_EQ(rd.status().code(), StatusCode::kDeadlineExceeded);

  MetricsSnapshot snap = service.metrics().Snapshot();
  // Only the two live members formed the group; the drops never admitted.
  EXPECT_EQ(snap.counter("sudaf.batch.coalesced"), 2);
  EXPECT_EQ(snap.counter("sudaf.batch.solo"), 0);
  EXPECT_EQ(snap.counter("sudaf.service.admitted"), 2);
  EXPECT_EQ(snap.counter("sudaf.service.queue_cancelled"), 1);
  EXPECT_EQ(snap.counter("sudaf.service.queue_timeouts"), 1);
  EXPECT_EQ(snap.counter("sudaf.service.ok"), 2);
  EXPECT_EQ(snap.counter("sudaf.service.failed"), 2);
  // Dropped tickets retried nothing: cancellation and deadlines are final.
  EXPECT_EQ(snap.counter("sudaf.service.retries"), 0);
}

// Concurrent waiters (the real deployment shape): N client threads each
// submit and wait their own ticket. However the windows land, every
// answer matches the serial reference and the counters reconcile.
TEST_F(SharedScanTest, ConcurrentClientsReconcileAndMatchSerial) {
  const std::vector<std::string> queries = OverlappingQueries();
  const std::vector<std::string> want =
      SerialReference(queries, ExecMode::kSudafShare);

  SudafSession session(&catalog_);
  ServiceOptions opts;
  opts.batch_window_ms = 5.0;
  opts.batch_max_queries = 8;
  QueryService service(&session, opts);

  constexpr int kClients = 8;
  constexpr int kPerClient = 5;
  std::vector<std::thread> clients;
  std::vector<Status> failures(kClients, Status::OK());
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        size_t q = (c + i) % queries.size();
        auto r = service.Execute(queries[q], ExecMode::kSudafShare);
        if (!r.ok()) {
          failures[c] = r.status();
          return;
        }
        if (Fingerprint(**r) != want[q]) {
          failures[c] = Status::Internal("answer diverged: " + queries[q]);
          return;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(failures[c].ok()) << "client " << c << ": "
                                  << failures[c].ToString();
  }

  MetricsSnapshot snap = service.metrics().Snapshot();
  EXPECT_EQ(snap.counter("sudaf.service.ok"), kClients * kPerClient);
  EXPECT_EQ(snap.counter("sudaf.batch.coalesced") +
                snap.counter("sudaf.batch.solo"),
            snap.counter("sudaf.service.admitted"));
  EXPECT_EQ(snap.gauge("sudaf.service.inflight"), 0);
}

}  // namespace
}  // namespace sudaf

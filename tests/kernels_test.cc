// Tests for agg/builtin_kernels and the grouped/partitioned aggregation
// helpers — including the algebraic-aggregation property that partitioned
// execution with ⊕-merge equals a single pass.

#include <limits>

#include "agg/builtin_kernels.h"
#include "common/rng.h"
#include "engine/aggregation.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

using testing_util::ExpectClose;

TEST(KernelsTest, UngroupedReductions) {
  std::vector<double> v = {1.0, 2.0, 3.0, -4.0};
  EXPECT_DOUBLE_EQ(KernelSum(v), 2.0);
  EXPECT_DOUBLE_EQ(KernelProd(v), -24.0);
  EXPECT_DOUBLE_EQ(KernelMin(v), -4.0);
  EXPECT_DOUBLE_EQ(KernelMax(v), 3.0);
}

TEST(KernelsTest, EmptyInputsYieldIdentities) {
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(KernelSum(empty), 0.0);
  EXPECT_DOUBLE_EQ(KernelProd(empty), 1.0);
  EXPECT_EQ(KernelMin(empty), std::numeric_limits<double>::infinity());
  EXPECT_EQ(KernelMax(empty), -std::numeric_limits<double>::infinity());
}

TEST(KernelsTest, IdentityIsNeutralForMerge) {
  for (AggOp op : {AggOp::kSum, AggOp::kProd, AggOp::kMin, AggOp::kMax,
                   AggOp::kCount}) {
    double e = AggIdentity(op);
    EXPECT_DOUBLE_EQ(AggMerge(op, e, 7.5), 7.5) << AggOpName(op);
    EXPECT_DOUBLE_EQ(AggMerge(op, 7.5, e), 7.5) << AggOpName(op);
  }
}

TEST(KernelsTest, MergeIsCommutativeAndAssociative) {
  Rng rng(5);
  for (AggOp op : {AggOp::kSum, AggOp::kProd, AggOp::kMin, AggOp::kMax}) {
    for (int i = 0; i < 50; ++i) {
      double a = rng.NextDoubleIn(-10, 10);
      double b = rng.NextDoubleIn(-10, 10);
      double c = rng.NextDoubleIn(-10, 10);
      ExpectClose(AggMerge(op, a, b), AggMerge(op, b, a));
      ExpectClose(AggMerge(op, AggMerge(op, a, b), c),
                  AggMerge(op, a, AggMerge(op, b, c)), 1e-12);
    }
  }
}

TEST(KernelsTest, GroupedAccumulate) {
  std::vector<double> in = {1, 2, 3, 4, 5};
  std::vector<int32_t> gids = {0, 1, 0, 1, 0};
  std::vector<double> acc(2, AggIdentity(AggOp::kSum));
  GroupedAccumulate(AggOp::kSum, in, gids, &acc);
  EXPECT_DOUBLE_EQ(acc[0], 9.0);
  EXPECT_DOUBLE_EQ(acc[1], 6.0);

  std::vector<double> cnt(2, AggIdentity(AggOp::kCount));
  GroupedAccumulate(AggOp::kCount, {}, gids, &cnt);
  EXPECT_DOUBLE_EQ(cnt[0], 3.0);
  EXPECT_DOUBLE_EQ(cnt[1], 2.0);

  std::vector<double> mx(2, AggIdentity(AggOp::kMax));
  GroupedAccumulate(AggOp::kMax, in, gids, &mx);
  EXPECT_DOUBLE_EQ(mx[0], 5.0);
  EXPECT_DOUBLE_EQ(mx[1], 4.0);
}

// Property sweep: partitioned execution (partial aggregation + ⊕ merge)
// must equal the single-pass result for every ⊕ and partition count — the
// algebraic-aggregation contract the Spark-like mode relies on.
class PartitionedEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<AggOp, int>> {};

TEST_P(PartitionedEquivalenceTest, MatchesSinglePass) {
  const auto [op, partitions] = GetParam();
  Rng rng(42 + partitions);
  const int64_t n = 5000;
  const int32_t groups = 17;
  std::vector<double> in(n);
  std::vector<int32_t> gids(n);
  for (int64_t i = 0; i < n; ++i) {
    // Keep products bounded: values near 1.
    in[i] = 0.9 + 0.2 * rng.NextDouble();
    gids[i] = static_cast<int32_t>(rng.NextBelow(groups));
  }

  ExecOptions serial;
  std::vector<double> expected =
      ComputeGroupedState(op, in, gids, groups, serial);

  ExecOptions partitioned;
  partitioned.partitioned = true;
  partitioned.num_partitions = partitions;
  std::vector<double> actual =
      ComputeGroupedState(op, in, gids, groups, partitioned);

  ASSERT_EQ(actual.size(), expected.size());
  for (int32_t g = 0; g < groups; ++g) {
    ExpectClose(expected[g], actual[g], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpsAndPartitionCounts, PartitionedEquivalenceTest,
    ::testing::Combine(::testing::Values(AggOp::kSum, AggOp::kProd,
                                         AggOp::kMin, AggOp::kMax,
                                         AggOp::kCount),
                       ::testing::Values(2, 4, 7)));

TEST(PartitionedTest, ParallelThreadsMatchSerial) {
  Rng rng(7);
  const int64_t n = 10000;
  std::vector<double> in(n);
  std::vector<int32_t> gids(n);
  for (int64_t i = 0; i < n; ++i) {
    in[i] = rng.NextDoubleIn(-5, 5);
    gids[i] = static_cast<int32_t>(rng.NextBelow(8));
  }
  ExecOptions serial;
  ExecOptions parallel;
  parallel.partitioned = true;
  parallel.num_partitions = 4;
  parallel.parallel = true;
  std::vector<double> a = ComputeGroupedState(AggOp::kSum, in, gids, 8, serial);
  std::vector<double> b =
      ComputeGroupedState(AggOp::kSum, in, gids, 8, parallel);
  for (int g = 0; g < 8; ++g) ExpectClose(a[g], b[g], 1e-9);
}

}  // namespace
}  // namespace sudaf

// Edge-case and failure-injection tests across the whole stack: empty
// inputs, single rows, NaN propagation, degenerate groupings, and cache
// behaviour under table replacement.

#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "sudaf/session.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

using testing_util::ExpectClose;

class EdgeTest : public ::testing::Test {
 protected:
  void Load(const std::vector<int64_t>& g, const std::vector<double>& x) {
    catalog_.PutTable("t", testing_util::MakeXyTable(g, x, x));
    session_ = std::make_unique<SudafSession>(&catalog_);
  }
  Catalog catalog_;
  std::unique_ptr<SudafSession> session_;
};

TEST_F(EdgeTest, EmptyTableUngrouped) {
  Load({}, {});
  for (ExecMode mode : {ExecMode::kEngine, ExecMode::kSudafNoShare,
                        ExecMode::kSudafShare}) {
    auto result = session_->Execute("SELECT sum(x), count(x) FROM t", mode);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ((*result)->num_rows(), 1);
    EXPECT_DOUBLE_EQ((*result)->column(0).GetFloat64(0), 0.0);
    EXPECT_DOUBLE_EQ((*result)->column(1).GetFloat64(0), 0.0);
  }
}

TEST_F(EdgeTest, EmptyTableGroupedYieldsNoRows) {
  Load({}, {});
  auto result = session_->Execute("SELECT g, qm(x) FROM t GROUP BY g",
                                  ExecMode::kSudafShare);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->num_rows(), 0);
}

TEST_F(EdgeTest, AvgOfEmptyIsNaN) {
  Load({}, {});
  auto result =
      session_->Execute("SELECT avg(x) FROM t", ExecMode::kSudafNoShare);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(std::isnan((*result)->column(0).GetFloat64(0)));
}

TEST_F(EdgeTest, SingleRow) {
  Load({0}, {4.0});
  for (ExecMode mode : {ExecMode::kEngine, ExecMode::kSudafNoShare,
                        ExecMode::kSudafShare}) {
    auto result = session_->Execute(
        "SELECT qm(x), gm(x), min(x), max(x) FROM t", mode);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    for (int c = 0; c < 4; ++c) {
      ExpectClose(4.0, (*result)->column(c).GetFloat64(0), 1e-9);
    }
  }
  // Variance of a singleton is 0 (population semantics).
  auto var =
      session_->Execute("SELECT var(x) FROM t", ExecMode::kSudafShare);
  ExpectClose(0.0, (*var)->column(0).GetFloat64(0), 1e-12);
}

TEST_F(EdgeTest, NaNInputsPropagateConsistently) {
  Load({0, 0, 0}, {1.0, std::nan(""), 3.0});
  auto engine = session_->Execute("SELECT sum(x) FROM t", ExecMode::kEngine);
  auto share =
      session_->Execute("SELECT sum(x) FROM t", ExecMode::kSudafShare);
  ASSERT_TRUE(engine.ok() && share.ok());
  EXPECT_TRUE(std::isnan((*engine)->column(0).GetFloat64(0)));
  EXPECT_TRUE(std::isnan((*share)->column(0).GetFloat64(0)));
}

TEST_F(EdgeTest, ZeroInLogDomainStates) {
  // gm with a zero: Σln|x| hits -inf, Π sgn hits 0 — the result must be 0,
  // matching the engine.
  Load({0, 0, 0}, {2.0, 0.0, 8.0});
  auto engine = session_->Execute("SELECT gm(x) FROM t", ExecMode::kEngine);
  auto share =
      session_->Execute("SELECT gm(x) FROM t", ExecMode::kSudafShare);
  ASSERT_TRUE(engine.ok() && share.ok());
  ExpectClose((*engine)->column(0).GetFloat64(0),
              (*share)->column(0).GetFloat64(0), 1e-9);
  // prod over the cached channels reconstructs 0 exactly.
  auto prod =
      session_->Execute("SELECT prod(x) FROM t", ExecMode::kSudafShare);
  ASSERT_TRUE(prod.ok());
  EXPECT_DOUBLE_EQ((*prod)->column(0).GetFloat64(0), 0.0);
}

TEST_F(EdgeTest, EveryRowItsOwnGroup) {
  std::vector<int64_t> g(100);
  std::vector<double> x(100);
  for (int i = 0; i < 100; ++i) {
    g[i] = i;
    x[i] = i + 1.0;
  }
  Load(g, x);
  auto result = session_->Execute(
      "SELECT g, avg(x) FROM t GROUP BY g ORDER BY g DESC LIMIT 2",
      ExecMode::kSudafShare);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ((*result)->num_rows(), 2);
  EXPECT_EQ((*result)->column(0).GetInt64(0), 99);
  ExpectClose(100.0, (*result)->column(1).GetFloat64(0));
}

TEST_F(EdgeTest, LimitZeroAndOversizedLimit) {
  Load({0, 1}, {1.0, 2.0});
  auto zero = session_->Execute(
      "SELECT g, sum(x) FROM t GROUP BY g LIMIT 0", ExecMode::kSudafShare);
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ((*zero)->num_rows(), 0);
  auto big = session_->Execute(
      "SELECT g, sum(x) FROM t GROUP BY g LIMIT 99", ExecMode::kSudafShare);
  ASSERT_TRUE(big.ok());
  EXPECT_EQ((*big)->num_rows(), 2);
}

TEST_F(EdgeTest, ReplacedTableInvalidatesCacheViaEpoch) {
  // Replacing a table bumps its catalog epoch, so the next probe discards
  // the cached group set automatically — no manual Clear() needed
  // (docs/robustness.md).
  Load({0, 1}, {1.0, 2.0});
  auto first = session_->Execute("SELECT g, sum(x) FROM t GROUP BY g",
                                 ExecMode::kSudafShare);
  ASSERT_TRUE(first.ok());
  catalog_.PutTable("t",
                    testing_util::MakeXyTable({0, 1, 2}, {5, 6, 7}, {0, 0, 0}));
  auto fresh = session_->Execute("SELECT g, sum(x) FROM t GROUP BY g",
                                 ExecMode::kSudafShare);
  ASSERT_TRUE(fresh.ok());
  ASSERT_EQ((*fresh)->num_rows(), 3);
  EXPECT_EQ(fresh->stats.states_from_cache, 0);
  EXPECT_EQ(fresh->stats.cache_epoch_invalidations, 1);
  ExpectClose(7.0, (*fresh)->column(1).GetFloat64(2));

  // The recreated set serves subsequent queries as usual.
  auto again = session_->Execute("SELECT g, sum(x) FROM t GROUP BY g",
                                 ExecMode::kSudafShare);
  ASSERT_TRUE(again.ok());
  EXPECT_GT(again->stats.states_from_cache, 0);
  EXPECT_EQ(again->stats.cache_epoch_invalidations, 0);
}

TEST_F(EdgeTest, HugeValuesDoNotBreakSharing) {
  Load({0, 0}, {1e150, 2e150});
  auto engine =
      session_->Execute("SELECT qm(x) FROM t", ExecMode::kEngine);
  auto share =
      session_->Execute("SELECT qm(x) FROM t", ExecMode::kSudafShare);
  ASSERT_TRUE(engine.ok() && share.ok());
  // Σx² overflows to inf in BOTH paths — consistent, not silently wrong.
  EXPECT_EQ((*engine)->column(0).GetFloat64(0),
            (*share)->column(0).GetFloat64(0));
}

TEST_F(EdgeTest, DuplicateStateAcrossItemsComputedOnce) {
  Load({0, 1, 0, 1}, {1, 2, 3, 4});
  auto result = session_->Execute(
      "SELECT g, sum(x) a, sum(x) b, sum(x)+0 c FROM t GROUP BY g",
      ExecMode::kSudafShare);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.num_states, 1);
  EXPECT_EQ(result->stats.states_computed, 1);
}

}  // namespace
}  // namespace sudaf

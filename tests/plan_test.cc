// Tests for engine/plan and engine/hash_join internals: conjunct
// classification, join-order formation, multi-match joins, post-join
// filters.

#include "engine/hash_join.h"
#include "engine/plan.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // a(ak, av), b(bk, bv), c(ck, cv): a 1..6, b 1..3, c 1..2.
    auto make = [](const std::string& key, const std::string& val, int n,
                   int key_mod) {
      Schema schema;
      SUDAF_CHECK(schema.AddField({key, DataType::kInt64}).ok());
      SUDAF_CHECK(schema.AddField({val, DataType::kFloat64}).ok());
      auto table = std::make_unique<Table>(std::move(schema));
      for (int i = 0; i < n; ++i) {
        table->column(0).AppendInt64(1 + i % key_mod);
        table->column(1).AppendFloat64(i * 1.0);
      }
      table->FinishBulkAppend();
      return table;
    };
    catalog_.PutTable("a", make("ak", "av", 6, 3));
    catalog_.PutTable("b", make("bk", "bv", 3, 3));
    catalog_.PutTable("c", make("ck", "cv", 2, 2));
  }

  QueryPlan Plan(const std::string& sql) {
    auto stmt = ParseSelect(sql);
    SUDAF_CHECK_MSG(stmt.ok(), stmt.status().ToString());
    stmts_.push_back(std::move(*stmt));
    auto plan = PlanQuery(*stmts_.back(), catalog_);
    SUDAF_CHECK_MSG(plan.ok(), plan.status().ToString());
    return std::move(*plan);
  }

  Catalog catalog_;
  std::vector<std::unique_ptr<SelectStatement>> stmts_;
};

TEST_F(PlanTest, ClassifiesJoinsAndFilters) {
  QueryPlan plan = Plan(
      "SELECT sum(av) FROM a, b WHERE ak = bk AND av > 1 AND bv < 100");
  EXPECT_EQ(plan.joins.size(), 1u);
  EXPECT_EQ(plan.filters.size(), 2u);
  EXPECT_NE(plan.filters[0].table_index, plan.filters[1].table_index);
}

TEST_F(PlanTest, SameTableEqualityIsAFilter) {
  QueryPlan plan = Plan("SELECT sum(av) FROM a WHERE ak = ak");
  EXPECT_TRUE(plan.joins.empty());
  EXPECT_EQ(plan.filters.size(), 1u);
}

TEST_F(PlanTest, ResolveColumnErrors) {
  QueryPlan plan = Plan("SELECT sum(av) FROM a, b WHERE ak = bk");
  EXPECT_TRUE(plan.ResolveColumn("av").ok());
  EXPECT_FALSE(plan.ResolveColumn("zzz").ok());
}

TEST_F(PlanTest, CrossTableNonEquiConjunctRejected) {
  auto stmt = ParseSelect("SELECT sum(av) FROM a, b WHERE ak < bk");
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE(PlanQuery(**stmt, catalog_).ok());
}

TEST_F(PlanTest, JoinProducesAllMatches) {
  // a has two rows per key 1..3, b one row per key: 6 output tuples.
  QueryPlan plan = Plan("SELECT sum(av) FROM a, b WHERE ak = bk");
  ASSERT_OK_AND_ASSIGN(JoinedRows joined, FilterAndJoin(plan));
  EXPECT_EQ(joined.num_tuples, 6);
  EXPECT_EQ(joined.rows.size(), 2u);
  EXPECT_EQ(joined.rows[0].size(), 6u);
  EXPECT_EQ(joined.rows[1].size(), 6u);
}

TEST_F(PlanTest, ThreeWayChainJoin) {
  // a ⋈ b on ak = bk, b ⋈ c on bk = ck: keys 1,2 survive (c has 1..2),
  // a has 2 rows per key -> 4 tuples.
  QueryPlan plan = Plan(
      "SELECT sum(av) FROM a, b, c WHERE ak = bk AND bk = ck");
  ASSERT_OK_AND_ASSIGN(JoinedRows joined, FilterAndJoin(plan));
  EXPECT_EQ(joined.num_tuples, 4);
}

TEST_F(PlanTest, RedundantEdgeBecomesPostJoinFilter) {
  // Both edges connect the same pair transitively; the second a–c edge is
  // applied as a post-join filter and must not change the result.
  QueryPlan plan = Plan(
      "SELECT sum(av) FROM a, b, c WHERE ak = bk AND bk = ck AND ak = ck");
  ASSERT_OK_AND_ASSIGN(JoinedRows joined, FilterAndJoin(plan));
  EXPECT_EQ(joined.num_tuples, 4);
}

TEST_F(PlanTest, FilterBeforeJoinShrinksBuildSide) {
  QueryPlan plan = Plan(
      "SELECT sum(av) FROM a, b WHERE ak = bk AND bk = 2");
  ASSERT_OK_AND_ASSIGN(JoinedRows joined, FilterAndJoin(plan));
  EXPECT_EQ(joined.num_tuples, 2);  // a rows with ak = 2
}

TEST_F(PlanTest, EmptyFilterGivesEmptyJoin) {
  QueryPlan plan = Plan(
      "SELECT sum(av) FROM a, b WHERE ak = bk AND bv > 1000");
  ASSERT_OK_AND_ASSIGN(JoinedRows joined, FilterAndJoin(plan));
  EXPECT_EQ(joined.num_tuples, 0);
}

TEST_F(PlanTest, GroupByColumnMustResolve) {
  auto stmt = ParseSelect("SELECT sum(av) FROM a GROUP BY nope");
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE(PlanQuery(**stmt, catalog_).ok());
}

}  // namespace
}  // namespace sudaf

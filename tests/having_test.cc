// Tests for the HAVING clause across all execution paths.

#include "gtest/gtest.h"
#include "sudaf/session.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

class HavingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // g: 0 has 2 rows, 1 has 3 rows, 2 has 5 rows; x = 1..10.
    std::vector<int64_t> g = {0, 0, 1, 1, 1, 2, 2, 2, 2, 2};
    std::vector<double> x = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    catalog_.PutTable("t", testing_util::MakeXyTable(g, x, x));
    session_ = std::make_unique<SudafSession>(&catalog_);
  }

  Catalog catalog_;
  std::unique_ptr<SudafSession> session_;
};

TEST_F(HavingTest, ParsesAndRoundTrips) {
  ASSERT_OK_AND_ASSIGN(
      auto stmt,
      ParseSelect("SELECT g, count(x) c FROM t GROUP BY g HAVING c > 2 "
                  "ORDER BY g"));
  ASSERT_NE(stmt->having, nullptr);
  EXPECT_NE(stmt->ToString().find("HAVING"), std::string::npos);
  auto clone = stmt->Clone();
  EXPECT_EQ(clone->ToString(), stmt->ToString());
}

TEST_F(HavingTest, FiltersGroupsInEveryMode) {
  const std::string sql =
      "SELECT g, count(x) c FROM t GROUP BY g HAVING c >= 3 ORDER BY g";
  for (ExecMode mode : {ExecMode::kEngine, ExecMode::kSudafNoShare,
                        ExecMode::kSudafShare}) {
    auto result = session_->Execute(sql, mode);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ((*result)->num_rows(), 2) << "mode " << static_cast<int>(mode);
    EXPECT_EQ((*result)->column(0).GetInt64(0), 1);
    EXPECT_EQ((*result)->column(0).GetInt64(1), 2);
  }
}

TEST_F(HavingTest, ReferencesAggregateAlias) {
  auto result = session_->Execute(
      "SELECT g, avg(x) m FROM t GROUP BY g HAVING m > 3 AND m < 9 "
      "ORDER BY g",
      ExecMode::kSudafShare);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Means: 1.5, 4, 8 -> groups 1 and 2 pass.
  ASSERT_EQ((*result)->num_rows(), 2);
}

TEST_F(HavingTest, HavingPlusLimit) {
  auto result = session_->Execute(
      "SELECT g, sum(x) s FROM t GROUP BY g HAVING s > 2 ORDER BY s DESC "
      "LIMIT 1",
      ExecMode::kSudafNoShare);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ((*result)->num_rows(), 1);
  EXPECT_DOUBLE_EQ((*result)->column(1).GetFloat64(0), 40.0);  // group 2
}

TEST_F(HavingTest, UnknownColumnInHavingFails) {
  auto result = session_->Execute(
      "SELECT g, sum(x) s FROM t GROUP BY g HAVING zzz > 2",
      ExecMode::kSudafNoShare);
  EXPECT_FALSE(result.ok());
}

TEST_F(HavingTest, HavingDisablesLazyTerminatingButStaysCorrect) {
  // With ORDER BY on a group key + LIMIT, the lazy path would normally
  // evaluate only the limited groups; HAVING forces full evaluation and
  // must still agree with the engine.
  const std::string sql =
      "SELECT g, qm(x) q FROM t GROUP BY g HAVING q > 2 ORDER BY g LIMIT 1";
  auto engine = session_->Execute(sql, ExecMode::kEngine);
  auto share = session_->Execute(sql, ExecMode::kSudafShare);
  ASSERT_TRUE(engine.ok() && share.ok());
  ASSERT_EQ((*engine)->num_rows(), (*share)->num_rows());
  testing_util::ExpectClose((*engine)->column(1).GetFloat64(0),
                            (*share)->column(1).GetFloat64(0), 1e-9);
}

}  // namespace
}  // namespace sudaf

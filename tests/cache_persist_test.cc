// Tests for the durable state cache (docs/robustness.md, "Durability &
// memory budget"): CRC32C, the file-I/O helpers, snapshot round-trips,
// per-record corruption recovery, the kill-and-reopen crash property over
// every persistence failpoint site, cost-aware eviction under a byte
// budget, and WAL compaction.

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "common/crc32c.h"
#include "common/failpoint.h"
#include "common/file_io.h"
#include "gtest/gtest.h"
#include "storage/catalog.h"
#include "sudaf/cache_persist.h"
#include "sudaf/session.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

// ---------------------------------------------------------------------------
// CRC32C
// ---------------------------------------------------------------------------

TEST(Crc32cTest, KnownAnswers) {
  // The canonical CRC-32C (Castagnoli) check value.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  EXPECT_EQ(Crc32c("The quick brown fox jumps over the lazy dog"),
            0x22620404u);
}

TEST(Crc32cTest, ContinuationMatchesOneShot) {
  const std::string data = "stateful checksums must compose";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32c(data.data(), split);
    crc = Crc32c(data.data() + split, data.size() - split, crc);
    EXPECT_EQ(crc, Crc32c(data)) << "split at " << split;
  }
}

TEST(Crc32cTest, DetectsSingleBitFlip) {
  std::string data(256, '\0');
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<char>(i);
  uint32_t clean = Crc32c(data);
  for (size_t byte : {size_t{0}, data.size() / 2, data.size() - 1}) {
    std::string flipped = data;
    flipped[byte] ^= 0x40;
    EXPECT_NE(Crc32c(flipped), clean);
  }
}

// ---------------------------------------------------------------------------
// File I/O helpers
// ---------------------------------------------------------------------------

class FileIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/sudaf_file_io";
    std::filesystem::remove_all(dir_);
    ASSERT_OK(EnsureDirectory(dir_));
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(FileIoTest, ReadMissingFileIsNotFound) {
  auto result = ReadFileToString(dir_ + "/nope");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(FileSizeOf(dir_ + "/nope"), -1);
  EXPECT_FALSE(FileExists(dir_ + "/nope"));
}

TEST_F(FileIoTest, AtomicWriteRoundTripsAndReplaces) {
  std::string path = dir_ + "/f";
  std::string binary("\x00\x01snapshot\xFF\x7F", 12);
  ASSERT_OK(WriteFileAtomic(path, binary));
  ASSERT_OK_AND_ASSIGN(std::string back, ReadFileToString(path));
  EXPECT_EQ(back, binary);
  // Replace: only the new content is visible, and no tmp file lingers.
  ASSERT_OK(WriteFileAtomic(path, "v2"));
  ASSERT_OK_AND_ASSIGN(back, ReadFileToString(path));
  EXPECT_EQ(back, "v2");
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

TEST_F(FileIoTest, AppendCreatesAndExtends) {
  std::string path = dir_ + "/wal";
  ASSERT_OK(AppendToFile(path, "abc"));
  ASSERT_OK(AppendToFile(path, "def"));
  ASSERT_OK_AND_ASSIGN(std::string back, ReadFileToString(path));
  EXPECT_EQ(back, "abcdef");
  EXPECT_EQ(FileSizeOf(path), 6);
}

TEST_F(FileIoTest, RemoveIsIdempotentAndDirsNest) {
  std::string path = dir_ + "/f";
  ASSERT_OK(WriteFileAtomic(path, "x"));
  ASSERT_OK(RemoveFileIfExists(path));
  ASSERT_OK(RemoveFileIfExists(path));  // absent is not an error
  ASSERT_OK(EnsureDirectory(dir_ + "/a/b/c"));
  ASSERT_OK(EnsureDirectory(dir_ + "/a/b/c"));  // existing is not an error
  ASSERT_OK(WriteFileAtomic(dir_ + "/a/b/c/f", "y"));
}

// ---------------------------------------------------------------------------
// Snapshot round-trip and per-record corruption recovery
// ---------------------------------------------------------------------------

class PersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/sudaf_persist";
    std::filesystem::remove_all(dir_);
    ASSERT_OK(EnsureDirectory(dir_));
    catalog_.PutTable("t",
                      testing_util::MakeXyTable({0, 1}, {1.0, 2.0}, {0, 0}));
  }
  void TearDown() override {
    FailPoint::DeactivateAll();
    std::filesystem::remove_all(dir_);
  }

  // Plants a two-group set carrying bit-pattern-sensitive doubles.
  StateCache::GroupSetPtr Plant(StateCache* cache, const std::string& sig) {
    auto keys = testing_util::MakeXyTable({0, 1}, {0, 0}, {0, 0});
    StateCache::GroupSetPtr set =
        cache->GetOrCreate(sig, *keys, 2, catalog_.TablesEpochs({"t"}),
                            /*covered_rows=*/2);
    StateCache::Entry tricky{{-0.0, 4.9e-324}, {}};       // signed zero,
    StateCache::Entry log{{0.1 + 0.2, 1e-308}, {1, -1}};  // denormal, 0.3…
    cache->InsertEntry(set.get(), "sum_pow|x|1", tricky);
    cache->InsertEntry(set.get(), "logclass|x", log);
    return set;
  }

  static std::string BitsOf(const std::vector<double>& v) {
    std::string bits(v.size() * sizeof(double), '\0');
    std::memcpy(bits.data(), v.data(), bits.size());
    return bits;
  }

  Catalog catalog_;
  std::string dir_;
};

TEST_F(PersistTest, SnapshotRoundTripIsBitIdentical) {
  StateCache cache;
  Plant(&cache, "T:t,;W:;G:g,");
  std::string path = dir_ + "/snap";
  ASSERT_OK(SaveCacheSnapshot(cache, path));

  StateCache back;
  CacheRecoveryStats stats;
  ASSERT_OK(LoadCacheSnapshot(path, catalog_, &back, &stats));
  EXPECT_EQ(stats.sets_recovered, 1);
  EXPECT_EQ(stats.entries_recovered, 2);
  EXPECT_EQ(stats.total_dropped(), 0);

  StateCache::GroupSetPtr set =
      back.Find("T:t,;W:;G:g,", catalog_.TablesEpochs({"t"}), false).set;
  ASSERT_NE(set, nullptr);
  EXPECT_EQ(set->num_groups, 2);
  ASSERT_EQ(set->entries.size(), 2u);
  // Channel doubles survive as raw bit patterns — -0.0 stays -0.0, the
  // denormal stays denormal, 0.1 + 0.2 keeps its exact rounding error.
  const StateCache::Entry& orig =
      cache.sets().at("T:t,;W:;G:g,")->entries.at("logclass|x");
  const StateCache::Entry& rec = set->entries.at("logclass|x");
  EXPECT_EQ(BitsOf(orig.main), BitsOf(rec.main));
  EXPECT_EQ(BitsOf(orig.sign), BitsOf(rec.sign));
  EXPECT_EQ(
      BitsOf(cache.sets().at("T:t,;W:;G:g,")->entries.at("sum_pow|x|1").main),
      BitsOf(set->entries.at("sum_pow|x|1").main));
  // And the group-keys table came back too.
  ASSERT_NE(set->group_keys, nullptr);
  EXPECT_EQ(set->group_keys->num_rows(), 2);
  EXPECT_EQ(set->group_keys->column(0).GetInt64(1), 1);
}

TEST_F(PersistTest, MissingOrForeignFileIsATypedError) {
  StateCache cache;
  CacheRecoveryStats stats;
  Status st = LoadCacheSnapshot(dir_ + "/absent", catalog_, &cache, &stats);
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  ASSERT_OK(WriteFileAtomic(dir_ + "/foreign", "definitely not a snapshot"));
  st = LoadCacheSnapshot(dir_ + "/foreign", catalog_, &cache, &stats);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

// Walks the framed record stream and returns the byte ranges of each
// record (offset of the length field, total framed size).
std::vector<std::pair<size_t, size_t>> RecordRanges(const std::string& file) {
  constexpr size_t kHeaderLen = 12;
  std::vector<std::pair<size_t, size_t>> out;
  size_t pos = kHeaderLen;
  while (pos + 8 <= file.size()) {
    uint32_t len = 0;
    std::memcpy(&len, file.data() + pos, 4);  // little-endian host assumed
    out.emplace_back(pos, 8 + len);
    pos += 8 + len;
  }
  return out;
}

TEST_F(PersistTest, FlippedByteDropsOnlyThatRecord) {
  StateCache cache;
  Plant(&cache, "T:t,;W:;G:a,");
  Plant(&cache, "T:t,;W:;G:b,");
  Plant(&cache, "T:t,;W:;G:c,");
  std::string path = dir_ + "/snap";
  ASSERT_OK(SaveCacheSnapshot(cache, path));

  ASSERT_OK_AND_ASSIGN(std::string file, ReadFileToString(path));
  auto ranges = RecordRanges(file);
  ASSERT_EQ(ranges.size(), 3u);
  // Corrupt one payload byte in the middle record (offset second/2 is past
  // the 8-byte frame header for any non-trivial payload).
  file[ranges[1].first + ranges[1].second / 2] ^= 0x01;
  ASSERT_OK(WriteFileAtomic(path, file));

  StateCache back;
  CacheRecoveryStats stats;
  ASSERT_OK(LoadCacheSnapshot(path, catalog_, &back, &stats));
  EXPECT_EQ(stats.records_dropped_checksum, 1);
  EXPECT_EQ(stats.records_dropped_torn, 0);
  EXPECT_EQ(stats.sets_recovered, 2);
  EXPECT_EQ(back.num_group_sets(), 2);
}

TEST_F(PersistTest, TruncatedTailEndsTheScanKeepingThePrefix) {
  StateCache cache;
  Plant(&cache, "T:t,;W:;G:a,");
  Plant(&cache, "T:t,;W:;G:b,");
  Plant(&cache, "T:t,;W:;G:c,");
  std::string path = dir_ + "/snap";
  ASSERT_OK(SaveCacheSnapshot(cache, path));

  ASSERT_OK_AND_ASSIGN(std::string file, ReadFileToString(path));
  auto ranges = RecordRanges(file);
  ASSERT_EQ(ranges.size(), 3u);
  // Tear mid-way through the second record: a crash during append.
  file.resize(ranges[1].first + ranges[1].second / 2);
  ASSERT_OK(WriteFileAtomic(path, file));

  StateCache back;
  CacheRecoveryStats stats;
  ASSERT_OK(LoadCacheSnapshot(path, catalog_, &back, &stats));
  EXPECT_EQ(stats.records_dropped_torn, 1);
  EXPECT_EQ(stats.sets_recovered, 1);
  ASSERT_NE(back.Find("T:t,;W:;G:a,", catalog_.TablesEpochs({"t"}), false).set, nullptr);
}

TEST_F(PersistTest, StaleEpochSetsAreDroppedOnLoad) {
  StateCache cache;
  Plant(&cache, "T:t,;W:;G:g,");
  std::string path = dir_ + "/snap";
  ASSERT_OK(SaveCacheSnapshot(cache, path));

  // The table changed after the snapshot: its states describe dead data.
  catalog_.PutTable("t", testing_util::MakeXyTable({5}, {9.0}, {0}));
  StateCache back;
  CacheRecoveryStats stats;
  ASSERT_OK(LoadCacheSnapshot(path, catalog_, &back, &stats));
  EXPECT_EQ(stats.sets_dropped_epoch, 1);
  EXPECT_EQ(stats.sets_recovered, 0);
  EXPECT_EQ(back.num_group_sets(), 0);
}

TEST_F(PersistTest, PoisonedEntriesAreQuarantinedOnLoad) {
  StateCache cache;
  StateCache::GroupSetPtr set = Plant(&cache, "T:t,;W:;G:g,");
  // Plant poison directly (bypassing the insert-time guard), as bit rot
  // or a historic bug would.
  set->entries["count|x"] = StateCache::Entry{{std::nan(""), 1.0}, {}};
  std::string path = dir_ + "/snap";
  ASSERT_OK(SaveCacheSnapshot(cache, path));

  StateCache back;
  CacheRecoveryStats stats;
  ASSERT_OK(LoadCacheSnapshot(path, catalog_, &back, &stats));
  EXPECT_EQ(stats.entries_quarantined, 1);
  EXPECT_EQ(stats.entries_recovered, 2);  // the healthy ones survive
  StateCache::GroupSetPtr rec =
      back.Find("T:t,;W:;G:g,", catalog_.TablesEpochs({"t"}), false).set;
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->entries.count("count|x"), 0u);
}

// ---------------------------------------------------------------------------
// CachePersistence: WAL replay, compaction, and crash windows
// ---------------------------------------------------------------------------

TEST_F(PersistTest, WalReplayRebuildsJournaledMutations) {
  CatalogEpochs epochs = catalog_.TablesEpochs({"t"});
  {
    StateCache cache;
    ASSERT_OK_AND_ASSIGN(auto persist,
                         CachePersistence::Open(dir_, &catalog_, &cache));
    Plant(&cache, "T:t,;W:;G:g,");
    EXPECT_GT(persist->wal_appends(), 0);
    EXPECT_EQ(persist->wal_errors(), 0);
    // "Kill": the process ends with mutations only in the WAL (the
    // snapshot was compacted empty at Open).
  }
  StateCache cache2;
  ASSERT_OK_AND_ASSIGN(auto persist,
                       CachePersistence::Open(dir_, &catalog_, &cache2));
  EXPECT_EQ(persist->recovery_stats().sets_recovered, 1);
  EXPECT_EQ(persist->recovery_stats().entries_recovered, 2);
  EXPECT_GT(persist->recovery_stats().wal_records_replayed, 0);
  EXPECT_EQ(persist->recovery_stats().total_dropped(), 0);
  StateCache::GroupSetPtr set = cache2.Find("T:t,;W:;G:g,", epochs, false).set;
  ASSERT_NE(set, nullptr);
  EXPECT_EQ(set->entries.size(), 2u);
}

TEST_F(PersistTest, EraseIsJournaledToo) {
  {
    StateCache cache;
    ASSERT_OK_AND_ASSIGN(auto persist,
                         CachePersistence::Open(dir_, &catalog_, &cache));
    Plant(&cache, "T:t,;W:;G:g,");
    cache.Clear();  // journaled erase
  }
  StateCache cache2;
  ASSERT_OK_AND_ASSIGN(auto persist,
                       CachePersistence::Open(dir_, &catalog_, &cache2));
  EXPECT_EQ(cache2.num_group_sets(), 0);
  EXPECT_EQ(persist->recovery_stats().sets_recovered, 0);
}

TEST_F(PersistTest, WalGrowthTriggersSnapshotCompaction) {
  StateCache cache;
  CachePolicy policy;
  policy.wal_max_bytes = 2048;  // tiny: a few inserts force compaction
  cache.set_policy(policy);
  ASSERT_OK_AND_ASSIGN(auto persist,
                       CachePersistence::Open(dir_, &catalog_, &cache));
  int64_t snapshots_before = persist->snapshots_written();
  for (int i = 0; i < 20; ++i) {
    Plant(&cache, "T:t,;W:;G:g" + std::to_string(i) + ",");
    // Journal callbacks only flag the need; the owner compacts between
    // queries once no cache locks are held (as SudafSession does).
    persist->MaybeCompact();
  }
  EXPECT_GT(persist->snapshots_written(), snapshots_before);
  // After every compaction the WAL restarts from a bare header, so its
  // size stays bounded by the threshold plus one record.
  EXPECT_LE(FileSizeOf(persist->wal_path()), policy.wal_max_bytes + 1024);

  // And the compacted store still recovers everything.
  persist.reset();
  StateCache cache2;
  ASSERT_OK_AND_ASSIGN(auto reopened,
                       CachePersistence::Open(dir_, &catalog_, &cache2));
  EXPECT_EQ(cache2.num_group_sets(), 20);
  EXPECT_EQ(reopened->recovery_stats().total_dropped(), 0);
}

// Frames `payload` exactly as the persistence layer does: len:u32 crc:u32
// payload, crc = CRC32C(len || payload). Used to splice hand-crafted edge
// records into a live WAL.
std::string FrameTestRecord(const std::string& payload) {
  std::string rec(8, '\0');
  uint32_t len = static_cast<uint32_t>(payload.size());
  std::memcpy(rec.data(), &len, 4);
  uint32_t crc = Crc32c(rec.data(), 4);
  crc = Crc32c(payload.data(), payload.size(), crc);
  std::memcpy(rec.data() + 4, &crc, 4);
  return rec + payload;
}

TEST_F(PersistTest, WalLengthPrefixPastEofIsTornNotFatal) {
  {
    StateCache cache;
    ASSERT_OK_AND_ASSIGN(auto persist,
                         CachePersistence::Open(dir_, &catalog_, &cache));
    Plant(&cache, "T:t,;W:;G:a,");
  }
  // Append a header whose length prefix points far past EOF with only a
  // stub of payload behind it — the classic crash-mid-append artifact.
  std::string wal = dir_ + "/cache.wal";
  ASSERT_TRUE(FileExists(wal));
  std::string frame(8, '\0');
  uint32_t len = 1 << 20;
  std::memcpy(frame.data(), &len, 4);
  uint32_t crc = Crc32c(frame.data(), 4);
  std::memcpy(frame.data() + 4, &crc, 4);
  ASSERT_OK(AppendToFile(wal, frame + "stub"));

  StateCache cache2;
  ASSERT_OK_AND_ASSIGN(auto persist,
                       CachePersistence::Open(dir_, &catalog_, &cache2));
  EXPECT_EQ(persist->recovery_stats().records_dropped_torn, 1);
  EXPECT_EQ(persist->recovery_stats().sets_recovered, 1);
  EXPECT_EQ(persist->recovery_stats().entries_recovered, 2);
}

TEST_F(PersistTest, WalZeroLengthRecordIsDroppedIndividually) {
  {
    StateCache cache;
    ASSERT_OK_AND_ASSIGN(auto persist,
                         CachePersistence::Open(dir_, &catalog_, &cache));
    Plant(&cache, "T:t,;W:;G:a,");
    Plant(&cache, "T:t,;W:;G:b,");
  }
  // Splice a zero-length record — CRC-valid but with no payload, not even
  // a type byte — between the first record and the rest of the stream.
  std::string wal = dir_ + "/cache.wal";
  ASSERT_OK_AND_ASSIGN(std::string file, ReadFileToString(wal));
  auto ranges = RecordRanges(file);
  ASSERT_GE(ranges.size(), 2u);
  file.insert(ranges[0].first + ranges[0].second, FrameTestRecord(""));
  ASSERT_OK(WriteFileAtomic(wal, file));

  StateCache cache2;
  ASSERT_OK_AND_ASSIGN(auto persist,
                       CachePersistence::Open(dir_, &catalog_, &cache2));
  // Dropped alone as malformed; every record after it still applied.
  EXPECT_EQ(persist->recovery_stats().records_dropped_checksum, 1);
  EXPECT_EQ(persist->recovery_stats().records_dropped_torn, 0);
  EXPECT_EQ(persist->recovery_stats().sets_recovered, 2);
  EXPECT_EQ(cache2.num_group_sets(), 2);
}

TEST_F(PersistTest, WalOversizeRecordIsDroppedIndividually) {
  {
    StateCache cache;
    CachePolicy policy;
    policy.wal_max_bytes = 1024;
    cache.set_policy(policy);
    ASSERT_OK_AND_ASSIGN(auto persist,
                         CachePersistence::Open(dir_, &catalog_, &cache));
    Plant(&cache, "T:t,;W:;G:a,");
    Plant(&cache, "T:t,;W:;G:b,");
  }
  // Splice an intact, CRC-valid record just past the scan bound (the
  // configured WAL limit, floored at 1 MiB): it cannot be legitimate, so
  // it must be dropped alone — never fatal, never treated as a torn tail.
  std::string wal = dir_ + "/cache.wal";
  ASSERT_OK_AND_ASSIGN(std::string file, ReadFileToString(wal));
  auto ranges = RecordRanges(file);
  ASSERT_GE(ranges.size(), 2u);
  std::string huge((1 << 20) + 1, '\x5a');
  file.insert(ranges[0].first + ranges[0].second, FrameTestRecord(huge));
  ASSERT_OK(WriteFileAtomic(wal, file));

  StateCache cache2;
  CachePolicy policy;
  policy.wal_max_bytes = 1024;
  cache2.set_policy(policy);
  ASSERT_OK_AND_ASSIGN(auto persist,
                       CachePersistence::Open(dir_, &catalog_, &cache2));
  EXPECT_EQ(persist->recovery_stats().records_dropped_oversize, 1);
  EXPECT_EQ(persist->recovery_stats().records_dropped_torn, 0);
  EXPECT_EQ(persist->recovery_stats().records_dropped_checksum, 0);
  EXPECT_EQ(persist->recovery_stats().sets_recovered, 2);
  EXPECT_GT(persist->recovery_stats().total_dropped(), 0);
}

TEST_F(PersistTest, SaveFaultsLeaveThePublishedSnapshotIntact) {
  StateCache cache;
  ASSERT_OK_AND_ASSIGN(auto persist,
                       CachePersistence::Open(dir_, &catalog_, &cache));
  Plant(&cache, "T:t,;W:;G:g,");
  ASSERT_OK(persist->Save());
  ASSERT_OK_AND_ASSIGN(std::string published,
                       ReadFileToString(persist->snapshot_path()));

  Plant(&cache, "T:t,;W:;G:h,");
  for (const char* site : {"cache:snapshot_write", "cache:snapshot_rename"}) {
    FailPoint::Activate(site, Status::Internal("crash"));
    EXPECT_FALSE(persist->Save().ok()) << site;
    FailPoint::DeactivateAll();
    // Atomic publish: the reader-visible snapshot never changes under a
    // mid-save crash, whichever window the crash hits.
    ASSERT_OK_AND_ASSIGN(std::string now,
                         ReadFileToString(persist->snapshot_path()));
    EXPECT_EQ(now, published) << site;
  }
  // With the fault gone the very next save succeeds.
  ASSERT_OK(persist->Save());
}

// ---------------------------------------------------------------------------
// Kill-and-reopen crash property, end-to-end through SudafSession
// ---------------------------------------------------------------------------

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "/sudaf_crash";
    std::filesystem::remove_all(base_);
    std::vector<int64_t> g(400);
    std::vector<double> x(400);
    for (int64_t i = 0; i < 400; ++i) {
      g[i] = i % 8;
      x[i] = static_cast<double>((i * 37) % 101) + 0.25;
    }
    catalog_.PutTable("t", testing_util::MakeXyTable(g, x, x));
  }
  void TearDown() override {
    FailPoint::DeactivateAll();
    std::filesystem::remove_all(base_);
  }

  static const std::vector<std::string>& Queries() {
    static const std::vector<std::string> kQueries = {
        "SELECT g, sum(x), count(x) FROM t GROUP BY g ORDER BY g",
        "SELECT g, var(x) FROM t GROUP BY g ORDER BY g",
        "SELECT g, stddev(x), avg(x) FROM t GROUP BY g ORDER BY g",
    };
    return kQueries;
  }

  // Bit-exact digest of a result table: the recovery property is not
  // "approximately equal", it is "the same doubles".
  static std::string Fingerprint(const Table& t) {
    std::string fp;
    for (int c = 0; c < t.num_columns(); ++c) {
      for (int64_t r = 0; r < t.num_rows(); ++r) {
        if (t.column(c).type() == DataType::kInt64) {
          int64_t v = t.column(c).GetInt64(r);
          fp.append(reinterpret_cast<const char*>(&v), sizeof(v));
        } else {
          double v = t.column(c).GetFloat64(r);
          fp.append(reinterpret_cast<const char*>(&v), sizeof(v));
        }
      }
    }
    return fp;
  }

  std::vector<std::string> RunAll(SudafSession* session) {
    std::vector<std::string> prints;
    for (const std::string& sql : Queries()) {
      auto result = session->Execute(sql, ExecMode::kSudafShare);
      EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
      prints.push_back(result.ok() ? Fingerprint(**result) : "");
    }
    return prints;
  }

  // The property: whatever survived recovery is internally consistent —
  // checksum-valid (or it would have been dropped), epoch-live, and free
  // of poison.
  void ExpectConsistent(const StateCache& cache) {
    for (const auto& [sig, set] : cache.sets()) {
      EXPECT_EQ(set->epochs.rewrite,
                catalog_.TablesEpochs(TablesFromDataSignature(sig)).rewrite)
          << sig;
      for (const auto& [key, entry] : set->entries) {
        EXPECT_FALSE(EntryIsPoisoned(entry)) << sig << " / " << key;
      }
    }
  }

  Catalog catalog_;
  std::string base_;
};

TEST_F(CrashRecoveryTest, KillAndReopenAtEveryPersistenceSite) {
  // The reference answers come from a cold, persistence-free session
  // (persistence failpoints have no site to fire at here).
  SudafSession cold(&catalog_);
  std::vector<std::string> want = RunAll(&cold);

  // The CI crash shard additionally arms sites through SUDAF_FAILPOINTS
  // with varying skip counts; the property below must hold no matter
  // which extra persistence fault is live. Locally the variable is
  // absent and this arms nothing.
  auto env_armed = FailPoint::ActivateFromEnv();
  ASSERT_TRUE(env_armed.ok()) << env_armed.status().ToString();

  struct Scenario {
    const char* site;
    int skip;
    int count;
  };
  const std::vector<Scenario> scenarios = {
      // Torn WAL append: one torn record, early / late in the stream.
      {"cache:wal_append", 0, 1},
      {"cache:wal_append", 2, 1},
      {"cache:wal_append", 5, 1},
      // Every append torn — nothing but the compacted snapshot survives.
      {"cache:wal_append", 0, 1000000},
      // Crash during the snapshot tmp-file write / before the rename.
      {"cache:snapshot_write", 0, 1000000},
      {"cache:snapshot_rename", 0, 1000000},
      // Records rejected while replaying at reopen.
      {"cache:recover_record", 0, 1},
      {"cache:recover_record", 1, 2},
      {"cache:recover_record", 0, 1000000},
  };

  int n = 0;
  for (const Scenario& s : scenarios) {
    SCOPED_TRACE(std::string(s.site) + " skip=" + std::to_string(s.skip) +
                 " count=" + std::to_string(s.count));
    std::string dir = base_ + "/run" + std::to_string(n++);
    bool fault_at_reopen =
        std::string(s.site) == "cache:recover_record";

    {  // Session A: populate the durable cache, crashing per scenario.
      SudafSession a(&catalog_);
      if (!fault_at_reopen) {
        FailPoint::Activate(s.site, Status::Internal("simulated crash"),
                            s.skip, s.count);
      }
      ASSERT_OK(a.EnableCachePersistence(dir));
      RunAll(&a);
      // Ask for a compaction too, so the snapshot crash windows are
      // exercised even when the WAL never overflowed. A failed save is a
      // crash, not a query error.
      if (a.cache_persistence() != nullptr) {
        (void)a.cache_persistence()->Save();
      }
      FailPoint::DeactivateAll();
      // The session dies here with whatever made it to disk — the "kill".
    }

    // Session B: reopen. Recovery must never fail, whatever is on disk.
    SudafSession b(&catalog_);
    if (fault_at_reopen) {
      FailPoint::Activate(s.site, Status::Internal("simulated crash"),
                          s.skip, s.count);
    }
    ASSERT_OK(b.EnableCachePersistence(dir));
    FailPoint::DeactivateAll();
    ExpectConsistent(b.cache());

    // And the recovered cache — whole, partial, or empty — produces
    // bit-identical answers to the cold run.
    std::vector<std::string> got = RunAll(&b);
    for (size_t q = 0; q < want.size(); ++q) {
      EXPECT_EQ(got[q], want[q]) << "query " << q;
    }
  }
}

TEST_F(CrashRecoveryTest, CleanReopenServesStatesWithoutRescanning) {
  std::string dir = base_ + "/clean";
  {
    SudafSession a(&catalog_);
    ASSERT_OK(a.EnableCachePersistence(dir));
    RunAll(&a);
  }
  SudafSession b(&catalog_);
  ASSERT_OK(b.EnableCachePersistence(dir));
  EXPECT_EQ(b.cache_persistence()->recovery_stats().total_dropped(), 0);
  EXPECT_GT(b.cache().num_entries(), 0);

  // The recovered states are not just present — they serve the queries,
  // so the reopened session never touches the base table.
  auto result = b.Execute(Queries()[0], ExecMode::kSudafShare);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->stats.states_from_cache, 0);
  EXPECT_FALSE(result->stats.scanned_base_data);
}

TEST_F(CrashRecoveryTest, EpochBumpBetweenSessionsDropsJoinSets) {
  // Satellite: multi-table signatures re-derive their epoch from *all*
  // covered tables at recovery. Build fact/dim, run a join in share mode,
  // kill, mutate only the dimension table, reopen: the join set must go.
  Schema fact_schema, dim_schema;
  ASSERT_OK(fact_schema.AddField({"fk", DataType::kInt64}));
  ASSERT_OK(fact_schema.AddField({"v", DataType::kFloat64}));
  ASSERT_OK(dim_schema.AddField({"dk", DataType::kInt64}));
  ASSERT_OK(dim_schema.AddField({"w", DataType::kFloat64}));
  auto fact = std::make_unique<Table>(std::move(fact_schema));
  auto dim = std::make_unique<Table>(std::move(dim_schema));
  for (int64_t i = 0; i < 30; ++i) {
    fact->column(0).AppendInt64(i % 3);
    fact->column(1).AppendFloat64(static_cast<double>(i) + 0.5);
  }
  for (int64_t k = 0; k < 3; ++k) {
    dim->column(0).AppendInt64(k);
    dim->column(1).AppendFloat64(static_cast<double>(k) * 10.0);
  }
  fact->FinishBulkAppend();
  dim->FinishBulkAppend();
  catalog_.PutTable("fact", std::move(fact));
  catalog_.PutTable("dim", std::move(dim));

  const std::string join_sql =
      "SELECT fk, sum(v) FROM fact, dim WHERE fk = dk "
      "GROUP BY fk ORDER BY fk";
  std::string dir = base_ + "/join";
  std::string want;
  {
    SudafSession a(&catalog_);
    ASSERT_OK(a.EnableCachePersistence(dir));
    auto result = a.Execute(join_sql, ExecMode::kSudafShare);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    want = Fingerprint(**result);
    ASSERT_GT(a.cache().num_entries(), 0);
  }

  // Replace only `dim`; the persisted join set covers both tables, so its
  // recomputed combined epoch no longer matches.
  auto dim2 = std::make_unique<Table>([] {
    Schema s;
    SUDAF_CHECK(s.AddField({"dk", DataType::kInt64}).ok());
    SUDAF_CHECK(s.AddField({"w", DataType::kFloat64}).ok());
    return s;
  }());
  for (int64_t k = 0; k < 3; ++k) {
    dim2->column(0).AppendInt64(k);
    dim2->column(1).AppendFloat64(static_cast<double>(k));
  }
  dim2->FinishBulkAppend();
  catalog_.PutTable("dim", std::move(dim2));

  SudafSession b(&catalog_);
  ASSERT_OK(b.EnableCachePersistence(dir));
  EXPECT_GE(b.cache_persistence()->recovery_stats().sets_dropped_epoch, 1);
  ExpectConsistent(b.cache());
  // The join recomputes from base data and still matches the cold answer
  // (the join result only reads fact values; dim only filters keys).
  auto result = b.Execute(join_sql, ExecMode::kSudafShare);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Fingerprint(**result), want);
  EXPECT_TRUE(result->stats.scanned_base_data);
}

// ---------------------------------------------------------------------------
// Byte budget: the invariant, eviction pressure, and budget rejects
// ---------------------------------------------------------------------------

TEST(CacheBudgetStressTest, ApproxBytesNeverExceedsBudgetAfterAnyInsert) {
  StateCache cache;
  CachePolicy policy;
  policy.max_bytes = 16 << 10;
  cache.set_policy(policy);
  auto keys = testing_util::MakeXyTable({0, 1, 2, 3}, {0, 0, 0, 0},
                                        {0, 0, 0, 0});
  std::mt19937 rng(20260806);  // deterministic
  std::uniform_int_distribution<int> sig_dist(0, 39);
  std::uniform_int_distribution<int> key_dist(0, 7);
  std::uniform_int_distribution<int> len_dist(1, 400);

  int64_t accepted = 0, rejected = 0;
  for (int i = 0; i < 2000; ++i) {
    std::string sig = "T:t,;W:q" + std::to_string(sig_dist(rng)) + ",;G:g,";
    StateCache::GroupSetPtr set = cache.GetOrCreate(sig, *keys, 4, CatalogEpochs{}, /*covered_rows=*/-1);
    ASSERT_NE(set, nullptr);
    ASSERT_LE(cache.ApproxBytes(), policy.max_bytes) << "after GetOrCreate";
    StateCache::Entry entry{std::vector<double>(len_dist(rng), 1.0), {}};
    std::string key = "state" + std::to_string(key_dist(rng));
    if (cache.InsertEntry(set.get(), key, entry)) {
      ++accepted;
    } else {
      ++rejected;
      EXPECT_FALSE(entry.main.empty());  // declined insert leaves it intact
    }
    // The invariant under test: the budget holds after EVERY insert, not
    // just eventually.
    ASSERT_LE(cache.ApproxBytes(), policy.max_bytes) << "insert " << i;
  }
  EXPECT_GT(accepted, 0);
  EXPECT_GT(cache.counters().evictions, 0);
  EXPECT_GT(cache.counters().bytes_evicted, 0);
}

class SessionBudgetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<int64_t> g(200);
    std::vector<double> x(200);
    for (int64_t i = 0; i < 200; ++i) {
      g[i] = i % 4;
      x[i] = static_cast<double>(i % 10) + 1.0;
    }
    catalog_.PutTable("t", testing_util::MakeXyTable(g, x, x));
  }

  Catalog catalog_;
};

TEST_F(SessionBudgetTest, EvictionsSurfaceInExecStats) {
  // Size the budget to hold exactly one query's group set: the second,
  // differently-signed query must evict the first.
  SudafSession probe(&catalog_);
  ASSERT_TRUE(probe.Execute("SELECT g, var(x) FROM t GROUP BY g",
                            ExecMode::kSudafShare)
                  .ok());
  int64_t one_set = probe.cache().ApproxBytes();
  ASSERT_GT(one_set, 0);

  SessionOptions opts;
  opts.cache_policy.max_bytes = one_set + one_set / 2;
  SudafSession session(&catalog_, opts);
  auto first = session.Execute("SELECT g, var(x) FROM t GROUP BY g",
                               ExecMode::kSudafShare);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->stats.cache_evictions, 0);
  auto second = session.Execute("SELECT g, var(x) FROM t WHERE x > 2 GROUP BY g",
                                ExecMode::kSudafShare);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_GT(second->stats.cache_evictions, 0);
  EXPECT_GT(second->stats.cache_bytes_evicted, 0);
  EXPECT_LE(session.cache().ApproxBytes(), opts.cache_policy.max_bytes);
}

TEST_F(SessionBudgetTest, BudgetRejectsKeepQueriesCorrect) {
  SudafSession probe(&catalog_);
  ASSERT_TRUE(probe.Execute("SELECT g, var(x) FROM t GROUP BY g",
                            ExecMode::kSudafShare)
                  .ok());
  int64_t full = probe.cache().ApproxBytes();

  // One byte short of the full footprint: the set fits, its last entry
  // does not. The query must still answer correctly from local state.
  SessionOptions opts;
  opts.cache_policy.max_bytes = full - 1;
  SudafSession session(&catalog_, opts);
  auto bounded = session.Execute("SELECT g, var(x) FROM t GROUP BY g ORDER BY g",
                                 ExecMode::kSudafShare);
  ASSERT_TRUE(bounded.ok()) << bounded.status().ToString();
  EXPECT_GT(bounded->stats.cache_budget_rejects, 0);
  EXPECT_LE(session.cache().ApproxBytes(), opts.cache_policy.max_bytes);

  auto engine = session.Execute("SELECT g, var(x) FROM t GROUP BY g ORDER BY g",
                                ExecMode::kEngine);
  ASSERT_TRUE(engine.ok());
  ASSERT_EQ((*bounded)->num_rows(), (*engine)->num_rows());
  for (int64_t r = 0; r < (*engine)->num_rows(); ++r) {
    testing_util::ExpectClose((*engine)->column(1).GetFloat64(r),
                              (*bounded)->column(1).GetFloat64(r));
  }
}

TEST_F(SessionBudgetTest, ShrinkingThePolicyEvictsImmediately) {
  SudafSession session(&catalog_);
  ASSERT_TRUE(session.Execute("SELECT g, var(x) FROM t GROUP BY g",
                              ExecMode::kSudafShare)
                  .ok());
  ASSERT_TRUE(session.Execute("SELECT g, var(x) FROM t WHERE x > 2 GROUP BY g",
                              ExecMode::kSudafShare)
                  .ok());
  int64_t unbounded = session.cache().ApproxBytes();
  ASSERT_GT(unbounded, 0);

  CachePolicy policy = session.options().cache_policy;
  policy.max_bytes = unbounded / 2;
  session.set_cache_policy(policy);
  EXPECT_LE(session.cache().ApproxBytes(), policy.max_bytes);
  EXPECT_GT(session.cache().counters().evictions, 0);
}

}  // namespace
}  // namespace sudaf

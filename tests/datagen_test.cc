// Tests for datagen/ and bench_support/: the synthetic Milan-like and
// TPC-DS-like datasets and the experiment workload definitions.

#include <cmath>
#include <set>

#include "bench_support/workload.h"
#include "datagen/milan_like.h"
#include "datagen/tpcds_like.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

TEST(MilanDataTest, SchemaAndSize) {
  MilanOptions options;
  options.num_rows = 5000;
  auto table = GenerateMilanData(options);
  EXPECT_EQ(table->num_rows(), 5000);
  EXPECT_EQ(table->schema().FindField("square_id"), 0);
  EXPECT_EQ(table->schema().FindField("time_interval"), 1);
  EXPECT_EQ(table->schema().FindField("internet_traffic"), 2);
}

TEST(MilanDataTest, TrafficIsPositiveAndHeavyTailed) {
  MilanOptions options;
  options.num_rows = 20000;
  auto table = GenerateMilanData(options);
  const Column& traffic = table->column(2);
  double max_seen = 0.0;
  double sum = 0.0;
  for (int64_t i = 0; i < table->num_rows(); ++i) {
    double v = traffic.GetFloat64(i);
    ASSERT_GT(v, 0.0);
    max_seen = std::max(max_seen, v);
    sum += v;
  }
  double mean = sum / table->num_rows();
  EXPECT_GT(max_seen, 10.0 * mean);  // heavy tail
}

TEST(MilanDataTest, DeterministicUnderSeed) {
  MilanOptions options;
  options.num_rows = 100;
  auto a = GenerateMilanData(options);
  auto b = GenerateMilanData(options);
  for (int64_t i = 0; i < a->num_rows(); ++i) {
    EXPECT_EQ(a->column(0).GetInt64(i), b->column(0).GetInt64(i));
    EXPECT_DOUBLE_EQ(a->column(2).GetFloat64(i), b->column(2).GetFloat64(i));
  }
}

TEST(MilanDataTest, SquareIdsInGridRange) {
  MilanOptions options;
  options.num_rows = 5000;
  options.num_squares = 100;
  auto table = GenerateMilanData(options);
  for (int64_t i = 0; i < table->num_rows(); ++i) {
    int64_t sq = table->column(0).GetInt64(i);
    EXPECT_GE(sq, 1);
    EXPECT_LE(sq, 100);
  }
}

class TpcdsDataTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpcdsOptions options;
    options.num_sales = 10000;
    ASSERT_OK(GenerateTpcdsData(options, &catalog_));
  }
  Catalog catalog_;
};

TEST_F(TpcdsDataTest, AllSixTablesExist) {
  for (const char* name : {"store_sales", "store", "date_dim", "item",
                           "customer_demographics", "promotion"}) {
    EXPECT_TRUE(catalog_.HasTable(name)) << name;
  }
}

TEST_F(TpcdsDataTest, ForeignKeysResolve) {
  ASSERT_OK_AND_ASSIGN(Table * sales, catalog_.GetTable("store_sales"));
  ASSERT_OK_AND_ASSIGN(Table * item, catalog_.GetTable("item"));
  ASSERT_OK_AND_ASSIGN(Table * store, catalog_.GetTable("store"));
  int64_t num_items = item->num_rows();
  int64_t num_stores = store->num_rows();
  for (int64_t i = 0; i < sales->num_rows(); ++i) {
    int64_t isk = sales->column(1).GetInt64(i);
    EXPECT_GE(isk, 1);
    EXPECT_LE(isk, num_items);
    int64_t ssk = sales->column(2).GetInt64(i);
    EXPECT_GE(ssk, 1);
    EXPECT_LE(ssk, num_stores);
  }
}

TEST_F(TpcdsDataTest, TennesseeStoresExist) {
  ASSERT_OK_AND_ASSIGN(Table * store, catalog_.GetTable("store"));
  int tn = 0;
  for (int64_t i = 0; i < store->num_rows(); ++i) {
    if (store->column(1).GetString(i) == "TN") ++tn;
  }
  EXPECT_GT(tn, 0);
  EXPECT_LT(tn, store->num_rows());
}

TEST_F(TpcdsDataTest, SportsCategoryExists) {
  ASSERT_OK_AND_ASSIGN(Table * item, catalog_.GetTable("item"));
  std::set<std::string> categories;
  for (int64_t i = 0; i < item->num_rows(); ++i) {
    categories.insert(item->column(2).GetString(i));
  }
  EXPECT_TRUE(categories.count("Sports"));
  EXPECT_EQ(categories.size(), 10u);
}

TEST_F(TpcdsDataTest, PricesArePositivelyCorrelated) {
  // sales_price ≈ 0.8·list_price + noise, so theta1 is meaningful.
  ASSERT_OK_AND_ASSIGN(Table * sales, catalog_.GetTable("store_sales"));
  double sx = 0, sy = 0, sxy = 0, sxx = 0;
  int64_t n = sales->num_rows();
  for (int64_t i = 0; i < n; ++i) {
    double x = sales->column(6).GetFloat64(i);
    double y = sales->column(7).GetFloat64(i);
    sx += x;
    sy += y;
    sxy += x * y;
    sxx += x * x;
  }
  double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  EXPECT_NEAR(slope, 0.8, 0.05);
}

TEST_F(TpcdsDataTest, DatesCoverYears) {
  ASSERT_OK_AND_ASSIGN(Table * dates, catalog_.GetTable("date_dim"));
  std::set<int64_t> years;
  for (int64_t i = 0; i < dates->num_rows(); ++i) {
    years.insert(dates->column(1).GetInt64(i));
  }
  EXPECT_TRUE(years.count(1998));
  EXPECT_TRUE(years.count(2000));
  EXPECT_TRUE(years.count(2002));
}

TEST(WorkloadTest, QueryModelsParse) {
  for (int model : {1, 2, 3}) {
    for (const std::string& agg : bench::SequenceAS1()) {
      auto stmt = ParseSelect(bench::QueryModel(model, agg));
      EXPECT_TRUE(stmt.ok()) << bench::QueryModel(model, agg);
    }
  }
}

TEST(WorkloadTest, SequencesMatchThePaper) {
  EXPECT_EQ(bench::SequenceAS1().size(), 11u);
  EXPECT_EQ(bench::SequenceAS2().size(), 11u);
  EXPECT_EQ(bench::SequenceAS1().front(), "cm");
  EXPECT_EQ(bench::SequenceAS2().front(), "max");
  EXPECT_EQ(bench::Figure10Aggregates().size(), 16u);
}

TEST(WorkloadTest, PrefetchSqlParses) {
  for (int model : {1, 2, 3}) {
    auto stmt = ParseSelect(bench::MomentSketchPrefetchSql(model, 10));
    EXPECT_TRUE(stmt.ok()) << model;
  }
}

TEST(WorkloadTest, EndToEndTinyWorkloadRuns) {
  Catalog catalog;
  bench::WorkloadOptions options;
  options.milan_rows = 2000;
  options.sales_rows = 2000;
  ASSERT_OK(bench::SetupWorkloadData(options, &catalog));
  SudafSession session(&catalog);
  ASSERT_OK(bench::RegisterQuantileUdafs(&session, 6));
  std::vector<double> times = bench::RunSequence(
      &session, 2, {"qm", "stddev", "avg"}, ExecMode::kSudafShare);
  ASSERT_EQ(times.size(), 3u);
  for (double t : times) EXPECT_GE(t, 0.0);
}

}  // namespace
}  // namespace sudaf

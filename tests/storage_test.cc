// Tests for storage/: Schema, Column (incl. dictionary encoding), Table,
// Catalog.

#include "gtest/gtest.h"
#include "storage/catalog.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

TEST(SchemaTest, AddAndFind) {
  Schema schema;
  ASSERT_OK(schema.AddField({"a", DataType::kInt64}));
  ASSERT_OK(schema.AddField({"b", DataType::kString}));
  EXPECT_EQ(schema.num_fields(), 2);
  EXPECT_EQ(schema.FindField("a"), 0);
  EXPECT_EQ(schema.FindField("b"), 1);
  EXPECT_EQ(schema.FindField("c"), -1);
}

TEST(SchemaTest, RejectsDuplicates) {
  Schema schema;
  ASSERT_OK(schema.AddField({"a", DataType::kInt64}));
  Status st = schema.AddField({"a", DataType::kFloat64});
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, ToStringListsFields) {
  Schema schema;
  ASSERT_OK(schema.AddField({"a", DataType::kInt64}));
  EXPECT_EQ(schema.ToString(), "(a INT64)");
}

TEST(ColumnTest, Int64RoundTrip) {
  Column col(DataType::kInt64);
  col.AppendInt64(5);
  col.AppendInt64(-7);
  EXPECT_EQ(col.size(), 2);
  EXPECT_EQ(col.GetInt64(0), 5);
  EXPECT_EQ(col.GetInt64(1), -7);
  EXPECT_DOUBLE_EQ(col.GetNumeric(1), -7.0);
}

TEST(ColumnTest, StringDictionaryEncodesDuplicates) {
  Column col(DataType::kString);
  col.AppendString("TN");
  col.AppendString("CA");
  col.AppendString("TN");
  EXPECT_EQ(col.size(), 3);
  EXPECT_EQ(col.GetString(2), "TN");
  EXPECT_EQ(col.GetStringCode(0), col.GetStringCode(2));
  EXPECT_NE(col.GetStringCode(0), col.GetStringCode(1));
  EXPECT_EQ(col.dictionary().size(), 2u);
}

TEST(ColumnTest, LookupDictionary) {
  Column col(DataType::kString);
  col.AppendString("a");
  col.AppendString("b");
  EXPECT_EQ(col.LookupDictionary("b"), col.GetStringCode(1));
  EXPECT_EQ(col.LookupDictionary("zzz"), -1);
}

TEST(ColumnTest, AppendValueChecksTypes) {
  Column col(DataType::kFloat64);
  col.AppendValue(Value(1.5));
  col.AppendValue(Value(int64_t{2}));  // numeric coercion allowed
  EXPECT_DOUBLE_EQ(col.GetFloat64(1), 2.0);
}

TEST(TableTest, AppendRowAndRead) {
  Schema schema;
  ASSERT_OK(schema.AddField({"id", DataType::kInt64}));
  ASSERT_OK(schema.AddField({"name", DataType::kString}));
  Table table(std::move(schema));
  table.AppendRow({Value(int64_t{1}), Value(std::string("one"))});
  table.AppendRow({Value(int64_t{2}), Value(std::string("two"))});
  EXPECT_EQ(table.num_rows(), 2);
  ASSERT_OK_AND_ASSIGN(const Column* name_col, table.GetColumn("name"));
  EXPECT_EQ(name_col->GetString(1), "two");
}

TEST(TableTest, GetColumnMissing) {
  Table table{Schema()};
  EXPECT_FALSE(table.GetColumn("nope").ok());
}

TEST(TableTest, FinishBulkAppendSetsRowCount) {
  Schema schema;
  ASSERT_OK(schema.AddField({"x", DataType::kFloat64}));
  Table table(std::move(schema));
  table.column(0).AppendFloat64(1.0);
  table.column(0).AppendFloat64(2.0);
  table.FinishBulkAppend();
  EXPECT_EQ(table.num_rows(), 2);
}

TEST(TableTest, ToStringTruncates) {
  auto table = testing_util::MakeXyTable({1, 2, 3}, {1, 2, 3}, {1, 2, 3});
  std::string s = table->ToString(2);
  EXPECT_NE(s.find("more rows"), std::string::npos);
}

TEST(CatalogTest, AddGetHas) {
  Catalog catalog;
  ASSERT_OK(catalog.AddTable("t",
                             testing_util::MakeXyTable({1}, {1.0}, {2.0})));
  EXPECT_TRUE(catalog.HasTable("t"));
  ASSERT_OK_AND_ASSIGN(Table * t, catalog.GetTable("t"));
  EXPECT_EQ(t->num_rows(), 1);
  EXPECT_FALSE(catalog.GetTable("u").ok());
}

TEST(CatalogTest, AddRejectsDuplicate) {
  Catalog catalog;
  ASSERT_OK(catalog.AddTable("t",
                             testing_util::MakeXyTable({1}, {1.0}, {2.0})));
  Status st =
      catalog.AddTable("t", testing_util::MakeXyTable({1}, {1.0}, {2.0}));
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, PutReplaces) {
  Catalog catalog;
  catalog.PutTable("t", testing_util::MakeXyTable({1}, {1.0}, {2.0}));
  catalog.PutTable("t", testing_util::MakeXyTable({1, 2}, {1, 2}, {3, 4}));
  ASSERT_OK_AND_ASSIGN(Table * t, catalog.GetTable("t"));
  EXPECT_EQ(t->num_rows(), 2);
}

TEST(CatalogTest, ExternalTablesShadowOwned) {
  Catalog catalog;
  catalog.PutTable("t", testing_util::MakeXyTable({1}, {1.0}, {2.0}));
  auto external = testing_util::MakeXyTable({1, 2, 3}, {1, 2, 3}, {4, 5, 6});
  catalog.PutExternalTable("t", external.get());
  ASSERT_OK_AND_ASSIGN(Table * t, catalog.GetTable("t"));
  EXPECT_EQ(t->num_rows(), 3);
  // TableNames does not double-count.
  EXPECT_EQ(catalog.TableNames().size(), 1u);
}

}  // namespace
}  // namespace sudaf

// Tests for sudaf/normalize: scalar-function normalization into
// shape-over-monomial, the concrete form of the paper's symbolic
// representations.

#include "expr/parser.h"
#include "gtest/gtest.h"
#include "sudaf/normalize.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

using testing_util::ExpectClose;

std::optional<NormalizedScalar> NormalizeString(const std::string& s) {
  auto expr = ParseExpression(s);
  SUDAF_CHECK_MSG(expr.ok(), expr.status().ToString());
  return NormalizeScalar(**expr);
}

TEST(NormalizeTest, PlainColumn) {
  auto n = NormalizeString("x");
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->base.Key(), "x");
  EXPECT_TRUE(n->shape.IsIdentity());
  EXPECT_TRUE(n->injective);
  EXPECT_FALSE(n->even);
}

TEST(NormalizeTest, SyntacticVariantsOfSameFunctionAgree) {
  // 4x², (2x)², x²·4, 4·x·x all normalize identically.
  auto a = NormalizeString("4*x^2");
  auto b = NormalizeString("(2*x)^2");
  auto c = NormalizeString("x^2 * 4");
  auto d = NormalizeString("4*x*x");
  for (auto* n : {&a, &b, &c, &d}) {
    ASSERT_TRUE(n->has_value());
    EXPECT_EQ((*n)->base.Key(), "x");
    EXPECT_EQ((*n)->shape.family, ShapeFamily::kPower);
    ExpectClose(4.0, (*n)->shape.a);
    ExpectClose(2.0, (*n)->shape.p);
  }
}

TEST(NormalizeTest, EvenPowersAreEvenAndNonInjective) {
  auto n = NormalizeString("x^2");
  ASSERT_TRUE(n.has_value());
  EXPECT_TRUE(n->even);
  EXPECT_FALSE(n->injective);
  auto cube = NormalizeString("x^3");
  ASSERT_TRUE(cube.has_value());
  EXPECT_FALSE(cube->even);
  EXPECT_TRUE(cube->injective);
}

TEST(NormalizeTest, ReciprocalAndQuotients) {
  auto inv = NormalizeString("x^-1");
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ(inv->base.Key(), "x");
  ExpectClose(-1.0, inv->shape.p);

  auto quot = NormalizeString("x / y");
  ASSERT_TRUE(quot.has_value());
  EXPECT_EQ(quot->base.Key(), "x*y^-1");
}

TEST(NormalizeTest, MultiColumnMonomials) {
  auto xy = NormalizeString("x*y");
  ASSERT_TRUE(xy.has_value());
  EXPECT_EQ(xy->base.Key(), "x*y");
  ExpectClose(1.0, xy->shape.p);

  // x²·y² ≡ (x·y)².
  auto sq1 = NormalizeString("x^2 * y^2");
  auto sq2 = NormalizeString("(x*y)^2");
  ASSERT_TRUE(sq1.has_value() && sq2.has_value());
  EXPECT_EQ(sq1->base.Key(), sq2->base.Key());
  ExpectClose(sq2->shape.p, sq1->shape.p);
}

TEST(NormalizeTest, LogPullsExponents) {
  // ln(x²) = 2·ln x, canonically over base x.
  auto n = NormalizeString("ln(x^2)");
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->base.Key(), "x");
  EXPECT_EQ(n->shape.family, ShapeFamily::kLog);
  ExpectClose(2.0, n->shape.a);
  ExpectClose(0.0, n->shape.b);

  // ln(x²·y²) ≡ ln((x·y)²) = 2·ln(x·y).
  auto m1 = NormalizeString("ln(x^2*y^2)");
  auto m2 = NormalizeString("ln((x*y)^2)");
  ASSERT_TRUE(m1.has_value() && m2.has_value());
  EXPECT_EQ(m1->base.Key(), m2->base.Key());
  ExpectClose(m2->shape.a, m1->shape.a);
}

TEST(NormalizeTest, LogBaseAndSqrt) {
  auto lg = NormalizeString("log(2, x)");
  ASSERT_TRUE(lg.has_value());
  EXPECT_EQ(lg->shape.family, ShapeFamily::kLog);
  ExpectClose(3.0, lg->shape.Eval(8.0));

  auto rt = NormalizeString("sqrt(x)");
  ASSERT_TRUE(rt.has_value());
  ExpectClose(0.5, rt->shape.p);
  EXPECT_TRUE(rt->injective);  // positive-domain
}

TEST(NormalizeTest, ExponentialForms) {
  // 2^x and exp(3x).
  auto p2 = NormalizeString("2^x");
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p2->shape.family, ShapeFamily::kExp);
  ExpectClose(8.0, p2->shape.Eval(3.0));

  auto e3 = NormalizeString("exp(3*x)");
  ASSERT_TRUE(e3.has_value());
  EXPECT_EQ(e3->shape.family, ShapeFamily::kExp);
  ExpectClose(3.0, e3->shape.c);
}

TEST(NormalizeTest, LogPowChains) {
  auto n = NormalizeString("ln(x)^3");
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->shape.family, ShapeFamily::kLogPow);
  ExpectClose(3.0, n->shape.p);
}

TEST(NormalizeTest, AbsMarksEven) {
  auto n = NormalizeString("ln(abs(x))");
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->shape.family, ShapeFamily::kLog);
  EXPECT_TRUE(n->even);
}

TEST(NormalizeTest, ConstantsFold) {
  auto n = NormalizeString("2 * 3 + 4");
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->shape.family, ShapeFamily::kConst);
  ExpectClose(10.0, n->shape.a);
  EXPECT_TRUE(n->base.IsEmpty());
}

TEST(NormalizeTest, SumsOfDistinctTermsAreOutOfScope) {
  // x + y is PS⊙, not PS∘ over one monomial; handled by splitting rules at
  // the state level, so normalization declines.
  EXPECT_FALSE(NormalizeString("x + y").has_value());
  EXPECT_FALSE(NormalizeString("x + 1").has_value());
  EXPECT_FALSE(NormalizeString("ln(x) * x").has_value());
}

TEST(NormalizeTest, UnaryMinusFoldsIntoCoefficient) {
  auto n = NormalizeString("-3*x^2");
  ASSERT_TRUE(n.has_value());
  ExpectClose(-3.0, n->shape.a);
  ExpectClose(2.0, n->shape.p);
}

TEST(MonomialTest, NegationSign) {
  Monomial odd;
  odd.exponents = {{"x", 1.0}};
  EXPECT_EQ(odd.NegationSign(), -1);
  Monomial even;
  even.exponents = {{"x", 1.0}, {"y", 1.0}};
  EXPECT_EQ(even.NegationSign(), 1);
  Monomial frac;
  frac.exponents = {{"x", 0.5}};
  EXPECT_EQ(frac.NegationSign(), 0);
}

TEST(MonomialTest, ToExprRoundTrips) {
  Monomial m;
  m.exponents = {{"x", 2.0}, {"y", -1.0}};
  ExprPtr e = m.ToExpr();
  auto n = NormalizeScalar(*e);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->base.Key(), "x*y^-0.5");  // canonicalized: leading exp 1 ⇒ /2
}

}  // namespace
}  // namespace sudaf

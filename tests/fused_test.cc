// Property tests for the fused StateBatch executor: for every aggregation
// op and a family of input expressions, the fused morsel-driven pass must
// agree with the legacy per-state path (EvalNumericVector +
// ComputeGroupedState), serially and in parallel, and repeated parallel
// runs must be bitwise deterministic.
//
// Tolerance contract: count, min and max are exact in every configuration
// (the accumulated values are identical, only the visit order changes).
// The fused pass folds rows through a fixed chunk tree whose shape depends
// only on input size and morsel size — never the worker count — so for a
// given configuration results are bitwise identical at every thread count,
// and a single-chunk input (≤ one morsel, like the fixtures here) is
// bitwise equal to the legacy serial order. Expressions involving pow may
// differ from the legacy path by a few ulps (the fused DAG
// strength-reduces x^k into multiplication chains while the legacy
// evaluator calls std::pow), so those compare within 1e-12 relative.

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "agg/builtin_kernels.h"
#include "common/rng.h"
#include "engine/aggregation.h"
#include "engine/state_batch.h"
#include "expr/evaluator.h"
#include "expr/parser.h"
#include "gtest/gtest.h"
#include "storage/column.h"
#include "sudaf/session.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

using testing_util::ExpectClose;

// A three-column frame (x FLOAT64, y FLOAT64, k INT64) with random values
// kept near 1 so products stay bounded, plus random group ids.
struct FusedFixture {
  Column x{DataType::kFloat64};
  Column y{DataType::kFloat64};
  Column k{DataType::kInt64};
  std::vector<int32_t> gids;
  int32_t num_groups = 0;

  FusedFixture(int64_t n, int32_t groups, uint64_t seed) : num_groups(groups) {
    Rng rng(seed);
    gids.resize(n);
    for (int64_t i = 0; i < n; ++i) {
      x.AppendFloat64(0.8 + 0.4 * rng.NextDouble());
      y.AppendFloat64(rng.NextDoubleIn(-2.0, 2.0));
      k.AppendInt64(static_cast<int64_t>(rng.NextBelow(100)));
      gids[i] = static_cast<int32_t>(rng.NextBelow(groups));
    }
  }

  ColumnResolver Resolver() const {
    return [this](const std::string& name) -> Result<const Column*> {
      if (name == "x") return &x;
      if (name == "y") return &y;
      if (name == "k") return &k;
      return Status::InvalidArgument("no column " + name);
    };
  }
};

struct ParsedRequest {
  ExprPtr expr;  // null for count
  AggOp op;
};

std::vector<ParsedRequest> ParseRequests(
    const std::vector<std::pair<AggOp, std::string>>& specs) {
  std::vector<ParsedRequest> out;
  for (const auto& [op, text] : specs) {
    ParsedRequest r;
    r.op = op;
    if (!text.empty()) {
      auto parsed = ParseExpression(text);
      SUDAF_CHECK_MSG(parsed.ok(), parsed.status().ToString());
      r.expr = std::move(*parsed);
    }
    out.push_back(std::move(r));
  }
  return out;
}

// Legacy reference: materialize each input over the full frame, then run
// one serial grouped pass per state.
std::vector<std::vector<double>> LegacyReference(
    const std::vector<ParsedRequest>& reqs, const FusedFixture& fix) {
  ExecOptions serial;
  serial.use_fused = false;
  ColumnResolver resolver = fix.Resolver();
  std::vector<std::vector<double>> out;
  for (const ParsedRequest& r : reqs) {
    if (r.expr == nullptr) {
      out.push_back(ComputeGroupedState(AggOp::kCount, {}, fix.gids,
                                        fix.num_groups, serial));
    } else {
      auto in = EvalNumericVector(*r.expr, resolver,
                                  static_cast<int64_t>(fix.gids.size()));
      SUDAF_CHECK_MSG(in.ok(), in.status().ToString());
      out.push_back(ComputeGroupedState(r.op, *in, fix.gids, fix.num_groups,
                                        serial));
    }
  }
  return out;
}

std::vector<std::vector<double>> RunFused(
    const std::vector<ParsedRequest>& reqs, const FusedFixture& fix,
    const ExecOptions& opts, StateBatchStats* stats = nullptr) {
  std::vector<StateBatchRequest> requests;
  for (const ParsedRequest& r : reqs) {
    requests.push_back({r.op, r.expr.get()});
  }
  auto result = ComputeStateBatch(requests, fix.Resolver(), fix.gids,
                                  fix.num_groups, opts, stats);
  SUDAF_CHECK_MSG(result.ok(), result.status().ToString());
  return std::move(*result);
}

bool IsExactOp(AggOp op) {
  return op == AggOp::kCount || op == AggOp::kMin || op == AggOp::kMax;
}

// Every op × a family of input shapes (plain column, int column, powers,
// arithmetic, unary functions) must match the legacy per-state path.
TEST(FusedStateBatchTest, MatchesLegacyAcrossOpsAndExpressions) {
  FusedFixture fix(20000, 13, 77);
  std::vector<std::pair<AggOp, std::string>> specs = {
      {AggOp::kCount, ""},
      {AggOp::kSum, "x"},
      {AggOp::kSum, "k"},
      {AggOp::kSum, "x^2"},
      {AggOp::kSum, "x^3"},
      {AggOp::kSum, "x^4"},
      {AggOp::kSum, "x*y + 1"},
      {AggOp::kSum, "sqrt(abs(y))"},
      {AggOp::kSum, "exp(-x)"},
      {AggOp::kSum, "ln(x)"},
      {AggOp::kProd, "x"},
      {AggOp::kProd, "abs(y) + 0.5"},
      {AggOp::kMin, "y"},
      {AggOp::kMin, "x - y"},
      {AggOp::kMax, "y"},
      {AggOp::kMax, "x*x"},
  };
  std::vector<ParsedRequest> reqs = ParseRequests(specs);
  std::vector<std::vector<double>> expected = LegacyReference(reqs, fix);

  ExecOptions serial;  // fused defaults, single worker
  std::vector<std::vector<double>> actual = RunFused(reqs, fix, serial);

  ASSERT_EQ(actual.size(), expected.size());
  for (size_t s = 0; s < reqs.size(); ++s) {
    ASSERT_EQ(actual[s].size(), expected[s].size()) << specs[s].second;
    bool uses_pow = specs[s].second.find('^') != std::string::npos;
    for (int32_t g = 0; g < fix.num_groups; ++g) {
      if (IsExactOp(reqs[s].op)) {
        EXPECT_EQ(expected[s][g], actual[s][g])
            << AggOpName(reqs[s].op) << "(" << specs[s].second << ") group "
            << g;
      } else if (!uses_pow) {
        // Single worker, same morsel-local accumulation order as serial:
        // non-pow sums and products are bitwise identical.
        EXPECT_EQ(expected[s][g], actual[s][g])
            << AggOpName(reqs[s].op) << "(" << specs[s].second << ") group "
            << g;
      } else {
        ExpectClose(expected[s][g], actual[s][g], 1e-12);
      }
    }
  }
}

// Parallel fused execution (multiple workers, merge in worker order) must
// match the serial reference within merge-reordering tolerance, for
// several morsel sizes, thread counts and group cardinalities.
TEST(FusedStateBatchTest, ParallelMatchesSerialReference) {
  std::vector<ParsedRequest> reqs = ParseRequests({
      {AggOp::kCount, ""},
      {AggOp::kSum, "x"},
      {AggOp::kSum, "x^2"},
      {AggOp::kSum, "x*y"},
      {AggOp::kProd, "x"},
      {AggOp::kMin, "y"},
      {AggOp::kMax, "y"},
  });
  for (int32_t groups : {1, 7, 501}) {
    FusedFixture fix(50000, groups, 1000 + groups);
    std::vector<std::vector<double>> expected = LegacyReference(reqs, fix);
    for (int threads : {2, 4, 8}) {
      for (int morsel : {1024, 4096, 65536}) {
        ExecOptions opts;
        opts.parallel = true;
        opts.num_threads = threads;
        opts.morsel_size = morsel;
        StateBatchStats stats;
        std::vector<std::vector<double>> actual =
            RunFused(reqs, fix, opts, &stats);
        EXPECT_GE(stats.threads_used, 1);
        for (size_t s = 0; s < reqs.size(); ++s) {
          for (int32_t g = 0; g < groups; ++g) {
            if (IsExactOp(reqs[s].op)) {
              EXPECT_EQ(expected[s][g], actual[s][g])
                  << "threads=" << threads << " morsel=" << morsel
                  << " groups=" << groups << " state=" << s;
            } else {
              ExpectClose(expected[s][g], actual[s][g], 1e-12);
            }
          }
        }
      }
    }
  }
}

// A fixed configuration must produce bitwise-identical results on repeated
// runs: workers claim chunks dynamically, but each chunk's morsel range and
// the chunk-order merge are fixed, so scheduling cannot leak into values.
TEST(FusedStateBatchTest, ParallelRunsAreBitwiseDeterministic) {
  std::vector<ParsedRequest> reqs = ParseRequests({
      {AggOp::kSum, "x"},
      {AggOp::kSum, "x^3"},
      {AggOp::kSum, "x*y"},
      {AggOp::kProd, "x"},
  });
  FusedFixture fix(30000, 19, 4242);
  ExecOptions opts;
  opts.parallel = true;
  opts.num_threads = 4;
  opts.morsel_size = 2048;
  std::vector<std::vector<double>> first = RunFused(reqs, fix, opts);
  for (int run = 0; run < 5; ++run) {
    std::vector<std::vector<double>> again = RunFused(reqs, fix, opts);
    ASSERT_EQ(again.size(), first.size());
    for (size_t s = 0; s < first.size(); ++s) {
      ASSERT_EQ(0, std::memcmp(first[s].data(), again[s].data(),
                               first[s].size() * sizeof(double)))
          << "state " << s << " differs on run " << run;
    }
  }
}

// Duplicate channels and common subexpressions must be computed once:
// the x^2 / x^3 / x^4 power chain shares slots, and identical requests
// collapse into one channel.
TEST(FusedStateBatchTest, SharesChannelsAndSubexpressions) {
  std::vector<ParsedRequest> reqs = ParseRequests({
      {AggOp::kCount, ""},
      {AggOp::kSum, "x"},
      {AggOp::kSum, "x^2"},
      {AggOp::kSum, "x^3"},
      {AggOp::kSum, "x^4"},
      {AggOp::kSum, "x^4"},   // duplicate request
      {AggOp::kCount, ""},    // duplicate count
  });
  FusedFixture fix(5000, 3, 9);
  ExecOptions opts;
  StateBatchStats stats;
  std::vector<std::vector<double>> out = RunFused(reqs, fix, opts, &stats);
  EXPECT_EQ(stats.num_requests, 7);
  EXPECT_EQ(stats.num_channels, 5);  // count, x, x^2, x^3, x^4
  EXPECT_GT(stats.num_shared_slots, 0);  // the power chain reuses slots
  // Duplicate requests still get their own (equal) output vectors.
  for (int32_t g = 0; g < 3; ++g) {
    EXPECT_EQ(out[4][g], out[5][g]);
    EXPECT_EQ(out[0][g], out[6][g]);
  }
}

// Empty inputs: zero rows must yield the ⊕-identity for every group, and
// zero groups must yield empty vectors, in both serial and parallel modes.
TEST(FusedStateBatchTest, EmptyInputEdgeCases) {
  FusedFixture empty(0, 4, 1);
  std::vector<ParsedRequest> reqs = ParseRequests({
      {AggOp::kCount, ""},
      {AggOp::kSum, "x"},
      {AggOp::kProd, "x"},
      {AggOp::kMin, "x"},
  });
  for (bool parallel : {false, true}) {
    ExecOptions opts;
    opts.parallel = parallel;
    opts.num_threads = 4;
    std::vector<std::vector<double>> out = RunFused(reqs, empty, opts);
    ASSERT_EQ(out.size(), 4u);
    for (int32_t g = 0; g < 4; ++g) {
      EXPECT_EQ(out[0][g], 0.0);
      EXPECT_EQ(out[1][g], 0.0);
      EXPECT_EQ(out[2][g], 1.0);
      EXPECT_EQ(out[3][g], std::numeric_limits<double>::infinity());
    }
  }

  FusedFixture no_groups(0, 0, 2);
  std::vector<std::vector<double>> out =
      RunFused(reqs, no_groups, ExecOptions{});
  for (const auto& v : out) EXPECT_TRUE(v.empty());
}

// Full-stack property: the three session execution modes must agree with
// each other AND with themselves under use_fused = false, across UDAF and
// built-in select lists. This pins the fused default to the legacy
// semantics end to end (rewrite, cache, terminating functions).
TEST(FusedSessionTest, FusedAndLegacySessionsAgree) {
  Rng rng(31337);
  std::vector<int64_t> g;
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 4000; ++i) {
    g.push_back(static_cast<int64_t>(rng.NextBelow(23)));
    x.push_back(rng.NextDoubleIn(0.5, 9.5));
    y.push_back(rng.NextDoubleIn(-3.0, 3.0));
  }
  Catalog catalog;
  catalog.PutTable("t", testing_util::MakeXyTable(g, x, y));

  const std::vector<std::string> queries = {
      "SELECT g, count(x), sum(x), min(y), max(y) FROM t GROUP BY g",
      "SELECT g, avg(x), var(x), stddev(x) FROM t GROUP BY g",
      "SELECT g, kurtosis(x) FROM t GROUP BY g",
      "SELECT g, skewness(x), var(x) FROM t GROUP BY g",
      "SELECT g, gm(x), hm(x) FROM t GROUP BY g",
      "SELECT g, sum(x*y), sum(x^2) FROM t GROUP BY g",
  };
  for (ExecMode mode :
       {ExecMode::kEngine, ExecMode::kSudafNoShare, ExecMode::kSudafShare}) {
    for (const std::string& sql : queries) {
      ExecOptions fused;  // defaults: use_fused = true
      ExecOptions legacy;
      legacy.use_fused = false;
      SudafSession fused_session(&catalog, fused);
      SudafSession legacy_session(&catalog, legacy);
      auto a = fused_session.Execute(sql, mode);
      auto b = legacy_session.Execute(sql, mode);
      ASSERT_TRUE(a.ok()) << sql << ": " << a.status().ToString();
      ASSERT_TRUE(b.ok()) << sql << ": " << b.status().ToString();
      const Table& ta = **a;
      const Table& tb = **b;
      ASSERT_EQ(ta.num_rows(), tb.num_rows()) << sql;
      ASSERT_EQ(ta.num_columns(), tb.num_columns()) << sql;
      // States agree within 1e-12 (see the state-level tests above); the
      // terminating functions of the standardized moments amplify that
      // drift (division by var^2), hence the looser table tolerance.
      for (int c = 0; c < ta.num_columns(); ++c) {
        for (int64_t r = 0; r < ta.num_rows(); ++r) {
          ExpectClose(tb.column(c).GetNumeric(r), ta.column(c).GetNumeric(r),
                      1e-9);
        }
      }
      if (mode != ExecMode::kEngine) {
        // The fused pass must actually have run (and been observable).
        EXPECT_TRUE(a->stats.used_fused) << sql;
        EXPECT_GT(a->stats.fused_channels, 0) << sql;
        EXPECT_FALSE(b->stats.used_fused) << sql;
      }
    }
  }
}

// The fused pass must also agree when driven through ExecOptions with
// parallel workers at the session level.
TEST(FusedSessionTest, ParallelSessionMatchesSerial) {
  Rng rng(555);
  std::vector<int64_t> g;
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 8000; ++i) {
    g.push_back(static_cast<int64_t>(rng.NextBelow(11)));
    x.push_back(rng.NextDoubleIn(1.0, 2.0));
    y.push_back(rng.NextDoubleIn(-1.0, 1.0));
  }
  Catalog catalog;
  catalog.PutTable("t", testing_util::MakeXyTable(g, x, y));

  ExecOptions serial;
  ExecOptions parallel;
  parallel.parallel = true;
  parallel.num_threads = 4;
  parallel.morsel_size = 1024;
  SudafSession a(&catalog, serial);
  SudafSession b(&catalog, parallel);
  const std::string sql =
      "SELECT g, kurtosis(x), sum(x*y), count(x) FROM t GROUP BY g";
  for (ExecMode mode : {ExecMode::kSudafNoShare, ExecMode::kSudafShare}) {
    auto ra = a.Execute(sql, mode);
    auto rb = b.Execute(sql, mode);
    ASSERT_TRUE(ra.ok()) << ra.status().ToString();
    ASSERT_TRUE(rb.ok()) << rb.status().ToString();
    ASSERT_EQ((*ra)->num_rows(), (*rb)->num_rows());
    for (int c = 0; c < (*ra)->num_columns(); ++c) {
      for (int64_t r = 0; r < (*ra)->num_rows(); ++r) {
        ExpectClose((*ra)->column(c).GetNumeric(r),
                    (*rb)->column(c).GetNumeric(r), 1e-9);
      }
    }
    EXPECT_GE(rb->stats.fused_threads, 1);
  }
}

}  // namespace
}  // namespace sudaf

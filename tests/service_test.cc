// Tests for the concurrent query service (docs/service.md): retry policy
// determinism, FIFO admission with guard-aware queueing, the persistence
// circuit breaker, fused-path fallback, memory-pressure degradation, the
// thread-pool reentrancy contract the service relies on, and the chaos
// acceptance harness — N clients × M queries under cycling failpoints,
// every request ending in a definite Status and every OK answer bitwise
// equal to a serial cold run.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/rng.h"
#include "common/query_guard.h"
#include "common/thread_pool.h"
#include "gtest/gtest.h"
#include "storage/catalog.h"
#include "sudaf/cache_persist.h"
#include "sudaf/service.h"
#include "sudaf/session.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

// ---------------------------------------------------------------------------
// RetryPolicy
// ---------------------------------------------------------------------------

TEST(RetryPolicyTest, BackoffIsDeterministicCappedAndJittered) {
  RetryPolicy policy;  // base 1ms, cap 64ms
  // Deterministic: the same (request, attempt) always sleeps the same time.
  EXPECT_EQ(policy.BackoffMs(7, 1), policy.BackoffMs(7, 1));
  EXPECT_EQ(policy.BackoffMs(7, 3), policy.BackoffMs(7, 3));
  // Jitter keeps each backoff in [cap/2, cap).
  for (int attempt = 1; attempt <= 10; ++attempt) {
    double cap = std::min(policy.base_backoff_ms * (1 << (attempt - 1)),
                          policy.max_backoff_ms);
    double ms = policy.BackoffMs(42, attempt);
    EXPECT_GE(ms, cap * 0.5) << "attempt " << attempt;
    EXPECT_LT(ms, cap) << "attempt " << attempt;
  }
  // Uncorrelated across requests: a shed burst does not retry in lockstep.
  EXPECT_NE(policy.BackoffMs(1, 1), policy.BackoffMs(2, 1));
  // Growth saturates at the cap.
  EXPECT_LE(policy.BackoffMs(5, 50), policy.max_backoff_ms);
}

TEST(RetryPolicyTest, OnlyTransientFailuresRetry) {
  RetryPolicy policy;
  const Status shed = Status::ResourceExhausted("queue full");
  const Status io = Status::Internal("injected");
  // Shedding happened before any work ran: always retryable.
  EXPECT_TRUE(policy.ShouldRetry(shed, /*idempotent=*/true, false));
  EXPECT_TRUE(policy.ShouldRetry(shed, /*idempotent=*/false, false));
  // A mid-execution memory trip re-runs work: idempotent only.
  EXPECT_TRUE(policy.ShouldRetry(shed, /*idempotent=*/true, true));
  EXPECT_FALSE(policy.ShouldRetry(shed, /*idempotent=*/false, true));
  // Transient I/O faults may have had partial side effects.
  EXPECT_TRUE(policy.ShouldRetry(io, /*idempotent=*/true, true));
  EXPECT_FALSE(policy.ShouldRetry(io, /*idempotent=*/false, true));
  // Definite outcomes never retry.
  for (const Status& s :
       {Status::Cancelled("c"), Status::DeadlineExceeded("d"),
        Status::ParseError("p"), Status::InvalidArgument("i"),
        Status::NotFound("n")}) {
    EXPECT_FALSE(policy.ShouldRetry(s, true, false)) << s.ToString();
    EXPECT_FALSE(policy.ShouldRetry(s, true, true)) << s.ToString();
  }
}

// ---------------------------------------------------------------------------
// AdmissionController
// ---------------------------------------------------------------------------

TEST(AdmissionTest, FastPathAdmitsUpToConcurrencyLimit) {
  AdmissionController adm(2, 4, nullptr);
  ASSERT_OK(adm.Admit(nullptr, 1.0));
  ASSERT_OK(adm.Admit(nullptr, 1.0));
  EXPECT_EQ(adm.inflight(), 2);
  adm.Release();
  adm.Release();
  EXPECT_EQ(adm.inflight(), 0);
}

TEST(AdmissionTest, ShedsImmediatelyWhenQueueIsFull) {
  AdmissionController adm(1, 0, nullptr);  // one slot, no queue
  ASSERT_OK(adm.Admit(nullptr, 1.0));
  Status s = adm.Admit(nullptr, 1.0);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  adm.Release();
  // The slot freed: the next arrival is admitted again.
  ASSERT_OK(adm.Admit(nullptr, 1.0));
  adm.Release();
}

TEST(AdmissionTest, SlotsAreGrantedInArrivalOrder) {
  AdmissionController adm(1, 4, nullptr);
  ASSERT_OK(adm.Admit(nullptr, 1.0));  // occupy the only slot

  std::atomic<int> order{0};
  int admitted_a = -1;
  int admitted_b = -1;
  std::thread a([&] {
    ASSERT_OK(adm.Admit(nullptr, 1.0));
    admitted_a = order.fetch_add(1);
    adm.Release();
  });
  while (adm.queue_depth() < 1) std::this_thread::yield();
  std::thread b([&] {
    ASSERT_OK(adm.Admit(nullptr, 1.0));
    admitted_b = order.fetch_add(1);
    adm.Release();
  });
  while (adm.queue_depth() < 2) std::this_thread::yield();

  adm.Release();
  a.join();
  b.join();
  // a arrived first, so a ran first.
  EXPECT_EQ(admitted_a, 0);
  EXPECT_EQ(admitted_b, 1);
}

// Satellite: an armed deadline fires WHILE QUEUED — the request does not
// wait out the queue only to fail later.
TEST(AdmissionTest, DeadlineFiresWhileQueued) {
  AdmissionController adm(1, 4, nullptr);
  ASSERT_OK(adm.Admit(nullptr, 1.0));  // never released during the wait

  QueryGuard guard;
  guard.ArmDeadline(30.0);
  Status s = adm.Admit(&guard, 2.0);
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(adm.queue_depth(), 0);  // the abandoned ticket was removed

  // The slot owner is unaffected and later arrivals still get the slot.
  adm.Release();
  ASSERT_OK(adm.Admit(nullptr, 1.0));
  adm.Release();
}

TEST(AdmissionTest, CancelFiresWhileQueuedAndDoesNotBlockOthers) {
  AdmissionController adm(1, 4, nullptr);
  ASSERT_OK(adm.Admit(nullptr, 1.0));

  CancelToken token;
  QueryGuard guard;
  guard.set_cancel_token(&token);
  Status cancelled;
  std::thread waiter([&] { cancelled = adm.Admit(&guard, 2.0); });
  while (adm.queue_depth() < 1) std::this_thread::yield();
  token.Cancel();
  waiter.join();
  EXPECT_EQ(cancelled.code(), StatusCode::kCancelled);
  EXPECT_EQ(adm.queue_depth(), 0);

  // The abandoned ticket does not stall the FIFO for the next arrival.
  std::thread next([&] { ASSERT_OK(adm.Admit(nullptr, 1.0)); });
  while (adm.queue_depth() < 1) std::this_thread::yield();
  adm.Release();
  next.join();
  adm.Release();
}

// ---------------------------------------------------------------------------
// ThreadPool reentrancy (the service runs queries that may ParallelFor
// from inside worker threads; a nested call must run inline, not deadlock
// on the pool's job mutex).
// ---------------------------------------------------------------------------

TEST(ThreadPoolReentrancyTest, NestedParallelForRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> inner_runs{0};
  ASSERT_OK(pool.TryParallelFor(4, [&](int64_t) -> Status {
    // Without the reentrancy guard this deadlocks: the worker would queue
    // a job on the pool it is itself servicing.
    return pool.TryParallelFor(4, [&](int64_t) -> Status {
      inner_runs.fetch_add(1);
      return Status::OK();
    });
  }));
  EXPECT_EQ(inner_runs.load(), 16);
}

TEST(ThreadPoolReentrancyTest, NestedFailurePropagatesThroughBothLevels) {
  ThreadPool pool(2);
  Status st = pool.TryParallelFor(2, [&](int64_t) -> Status {
    return pool.TryParallelFor(2, [&](int64_t t) -> Status {
      return t == 1 ? Status::Internal("inner fault") : Status::OK();
    });
  });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------------------
// QueryService
// ---------------------------------------------------------------------------

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailPoint::Reset();
    std::vector<int64_t> g;
    std::vector<double> x;
    std::vector<double> y;
    Rng rng(2024);
    for (int i = 0; i < 200; ++i) {
      g.push_back(static_cast<int64_t>(rng.NextBelow(8)));
      x.push_back(rng.NextDoubleIn(0.5, 9.5));
      y.push_back(rng.NextDoubleIn(-2.0, 2.0));
    }
    catalog_.PutTable("t", testing_util::MakeXyTable(g, x, y));
    session_ = std::make_unique<SudafSession>(&catalog_);
  }
  void TearDown() override {
    FailPoint::Reset();
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  void EnablePersistence() {
    dir_ = ::testing::TempDir() + "/sudaf_service";
    std::filesystem::remove_all(dir_);
    ASSERT_OK(session_->EnableCachePersistence(dir_));
  }

  Catalog catalog_;
  std::unique_ptr<SudafSession> session_;
  std::string dir_;
};

TEST_F(ServiceTest, ServesQueriesAndReportsAttempts) {
  QueryService service(session_.get());
  auto result =
      service.Execute("SELECT g, sum(x) FROM t GROUP BY g", ExecMode::kSudafShare);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.service_attempts, 1);
  EXPECT_FALSE(result->stats.degraded_fused_fallback);
  EXPECT_FALSE(result->stats.degraded_cache_memory_only);
  MetricsSnapshot snap = service.metrics().Snapshot();
  EXPECT_EQ(snap.counter("sudaf.service.requests"), 1);
  EXPECT_EQ(snap.counter("sudaf.service.ok"), 1);
  EXPECT_EQ(snap.counter("sudaf.service.admitted"), 1);
}

TEST_F(ServiceTest, RetriesTransientFaultsToSuccess) {
  QueryService service(session_.get());
  // The first attempt's cache insert fails; the retry finds a clean run.
  FailPoint::Activate("cache:insert", Status::Internal("injected"));
  auto result =
      service.Execute("SELECT g, sum(x) FROM t GROUP BY g", ExecMode::kSudafShare);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.service_attempts, 2);
  EXPECT_EQ(service.metrics().Snapshot().counter("sudaf.service.retries"), 1);
}

TEST_F(ServiceTest, NonIdempotentRequestsNeverRetryExecutedWork) {
  QueryService service(session_.get());
  FailPoint::Activate("cache:insert", Status::Internal("injected"));
  ServiceRequest req;
  req.sql = "SELECT g, sum(x) FROM t GROUP BY g";
  req.idempotent = false;
  auto result = service.Execute(req);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  MetricsSnapshot snap = service.metrics().Snapshot();
  EXPECT_EQ(snap.counter("sudaf.service.retries"), 0);
  EXPECT_EQ(snap.counter("sudaf.service.failed"), 1);
}

TEST_F(ServiceTest, DefiniteOutcomesFailFastWithoutRetry) {
  QueryService service(session_.get());
  auto result = service.Execute("not sql at all", ExecMode::kSudafShare);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(service.metrics().Snapshot().counter("sudaf.service.retries"), 0);
}

TEST_F(ServiceTest, GuardDeadlineIsHonoredThroughTheService) {
  QueryService service(session_.get());
  QueryGuard guard;
  guard.ArmDeadline(0.0);  // already expired
  ServiceRequest req;
  req.sql = "SELECT g, sum(x) FROM t GROUP BY g";
  req.guard = &guard;
  auto result = service.Execute(req);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  // A definite outcome: no retries were attempted.
  EXPECT_EQ(service.metrics().Snapshot().counter("sudaf.service.retries"), 0);
}

// Distinct signatures so every request plants fresh cache state (and so
// journals a WAL append while persistence is attached).
static std::string DistinctQuery(int i) {
  return "SELECT g, sum(x) FROM t WHERE x > 0." + std::to_string(i % 9) +
         std::to_string(i / 9 % 10) + " GROUP BY g";
}

TEST_F(ServiceTest, BreakerOpensOnWalFaultsThenRecovers) {
  EnablePersistence();
  ServiceOptions opts;
  opts.breaker.open_after_errors = 3;
  opts.breaker.half_open_after = 2;
  QueryService service(session_.get(), opts);

  // Every WAL append fails (the disk "went bad"). Queries still succeed —
  // durability degrades, answers don't.
  FailPoint::Activate("cache:wal_append", Status::Internal("disk fault"),
                      /*skip=*/0, /*count=*/1 << 20);
  int i = 0;
  for (; i < 3; ++i) {
    auto r = service.Execute(DistinctQuery(i), ExecMode::kSudafShare);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  EXPECT_EQ(service.breaker_state(), QueryService::BreakerState::kOpen);
  EXPECT_TRUE(session_->cache_persistence_suspended());
  EXPECT_EQ(service.metrics().Snapshot().counter(
                "sudaf.service.breaker_opened"), 1);

  // While open the cache is memory-only and requests say so.
  auto degraded = service.Execute(DistinctQuery(i++), ExecMode::kSudafShare);
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded->stats.degraded_cache_memory_only);

  // The disk heals; after the open window the half-open probe re-publishes
  // a snapshot and closes the breaker.
  FailPoint::Reset();
  for (int j = 0; j < 3 && service.breaker_state() !=
                               QueryService::BreakerState::kClosed; ++j) {
    auto r = service.Execute(DistinctQuery(i++), ExecMode::kSudafShare);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  EXPECT_EQ(service.breaker_state(), QueryService::BreakerState::kClosed);
  EXPECT_FALSE(session_->cache_persistence_suspended());
  ASSERT_NE(session_->cache_persistence(), nullptr);
  MetricsSnapshot snap = service.metrics().Snapshot();
  EXPECT_EQ(snap.counter("sudaf.service.breaker_closed"), 1);
  EXPECT_GE(snap.counter("sudaf.service.breaker_probes"), 1);

  // The resumed store snapshotted current memory: a cold session recovers
  // the cache contents written after the breaker closed.
  session_->DisableCachePersistence();
  StateCache cold;
  ASSERT_OK_AND_ASSIGN(auto reopened,
                       CachePersistence::Open(dir_, &catalog_, &cold));
  EXPECT_GT(cold.num_entries(), 0);
}

TEST_F(ServiceTest, FusedPathFallsBackAndRecovers) {
  ServiceOptions opts;
  opts.fused_fallback_after = 2;
  opts.fused_reprobe_every = 4;
  QueryService service(session_.get(), opts);

  // The fused executor faults on every morsel; the legacy path is clean.
  FailPoint::Activate("state_batch:morsel", Status::Internal("fused fault"),
                      /*skip=*/0, /*count=*/1 << 20);
  // Attempt 1 (fused) fails, attempt 2 (fused) fails and trips the
  // tracker, attempt 3 runs legacy and succeeds.
  auto first =
      service.Execute("SELECT g, sum(x) FROM t GROUP BY g", ExecMode::kSudafShare);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->stats.service_attempts, 3);
  EXPECT_TRUE(first->stats.degraded_fused_fallback);
  EXPECT_TRUE(service.fused_degraded());

  // While degraded, requests go straight to the legacy engine.
  auto second =
      service.Execute("SELECT g, avg(x) FROM t GROUP BY g", ExecMode::kSudafShare);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->stats.degraded_fused_fallback);
  EXPECT_EQ(second->stats.service_attempts, 1);

  // The fault clears; a periodic re-probe runs fused again and recovers.
  FailPoint::Reset();
  for (int i = 0; i < 4 && service.fused_degraded(); ++i) {
    auto r = service.Execute(DistinctQuery(i), ExecMode::kSudafShare);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  EXPECT_FALSE(service.fused_degraded());
  MetricsSnapshot snap = service.metrics().Snapshot();
  EXPECT_EQ(snap.counter("sudaf.service.fused_fallbacks"), 1);
  EXPECT_EQ(snap.counter("sudaf.service.fused_recoveries"), 1);
  EXPECT_GE(snap.counter("sudaf.service.fused_reprobes"), 1);
}

TEST_F(ServiceTest, MemoryPressureShrinksTheCacheBudgetOnline) {
  SessionOptions session_opts;
  session_opts.cache_policy.max_bytes = 1 << 20;
  session_ = std::make_unique<SudafSession>(&catalog_, session_opts);
  ServiceOptions opts;
  opts.cache_min_bytes = 256 * 1024;
  QueryService service(session_.get(), opts);

  service.SignalMemoryPressure();
  EXPECT_EQ(session_->options().cache_policy.max_bytes, 512 * 1024);
  service.SignalMemoryPressure();
  EXPECT_EQ(session_->options().cache_policy.max_bytes, 256 * 1024);
  // Floored: further pressure cannot shrink below the minimum.
  service.SignalMemoryPressure();
  EXPECT_EQ(session_->options().cache_policy.max_bytes, 256 * 1024);
  EXPECT_EQ(service.metrics().Snapshot().counter(
                "sudaf.service.cache_shrinks"), 3);
}

// ---------------------------------------------------------------------------
// Chaos acceptance harness: N clients × M queries with a chaos thread
// cycling failpoint configurations under the service. Every request must
// end in a definite Status; every OK answer must be bitwise identical to a
// serial cold run; the service counters must reconcile exactly.
// ---------------------------------------------------------------------------

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailPoint::Reset();
    std::vector<int64_t> g;
    std::vector<double> x;
    std::vector<double> y;
    Rng rng(777);
    for (int i = 0; i < 300; ++i) {
      g.push_back(static_cast<int64_t>(rng.NextBelow(11)));
      x.push_back(rng.NextDoubleIn(0.5, 9.5));
      y.push_back(rng.NextDoubleIn(-2.0, 2.0));
    }
    catalog_.PutTable("t", testing_util::MakeXyTable(g, x, y));
  }
  void TearDown() override { FailPoint::Reset(); }

  // Aggregates whose states AND terminators are bitwise identical between
  // the fused and legacy paths, so a mid-run fused fallback cannot perturb
  // answers (asserted below, not assumed).
  static std::vector<std::string> Queries() {
    return {
        "SELECT g, count(x), sum(x) FROM t GROUP BY g",
        "SELECT g, min(x), max(x) FROM t GROUP BY g",
        "SELECT g, sum(x*y) FROM t GROUP BY g",
        "SELECT g, sum(y), count(y) FROM t WHERE x > 3.0 GROUP BY g",
        "SELECT g, avg(x) FROM t GROUP BY g",
    };
  }

  // Bit-exact digest: chaos must never change answers, only availability.
  static std::string Fingerprint(const Table& t) {
    std::string fp;
    for (int c = 0; c < t.num_columns(); ++c) {
      for (int64_t r = 0; r < t.num_rows(); ++r) {
        if (t.column(c).type() == DataType::kInt64) {
          int64_t v = t.column(c).GetInt64(r);
          fp.append(reinterpret_cast<const char*>(&v), sizeof(v));
        } else {
          double v = t.column(c).GetFloat64(r);
          fp.append(reinterpret_cast<const char*>(&v), sizeof(v));
        }
      }
    }
    return fp;
  }

  Catalog catalog_;
};

TEST_F(ChaosTest, ClientsUnderCyclingFaultsGetDefiniteBitIdenticalAnswers) {
  const std::vector<std::string> queries = Queries();

  // Serial cold references — and the cross-path identity precondition:
  // the chaos run may serve any query from either engine path, so the two
  // paths must agree bitwise on this query set.
  std::vector<std::string> want(queries.size());
  {
    SudafSession fused_ref(&catalog_);
    ExecOptions legacy_opts;
    legacy_opts.use_fused = false;
    SudafSession legacy_ref(&catalog_, legacy_opts);
    for (size_t q = 0; q < queries.size(); ++q) {
      auto f = fused_ref.Execute(queries[q], ExecMode::kSudafShare);
      auto l = legacy_ref.Execute(queries[q], ExecMode::kSudafShare);
      ASSERT_TRUE(f.ok() && l.ok()) << queries[q];
      want[q] = Fingerprint(**f);
      ASSERT_EQ(want[q], Fingerprint(**l))
          << "fused and legacy answers diverge for: " << queries[q];
    }
  }

  SudafSession session(&catalog_);
  ServiceOptions opts;
  opts.max_concurrency = 2;
  opts.max_queue = 2;  // small: shedding + retry actually exercised
  opts.retry.max_attempts = 4;
  QueryService service(&session, opts);

  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 10;

  // Chaos thread: cycle fault configurations while clients run. Specs are
  // the SUDAF_FAILPOINTS grammar (docs/service.md); "" is a quiet phase.
  std::atomic<bool> stop{false};
  std::thread chaos([&] {
    const std::vector<const char*> specs = {
        "cache:insert",                     // one insert fault
        "",                                 // quiet
        "cache:wal_append=count",           // persistent WAL faults
        "state_batch:morsel=skip:3",        // one fused morsel fault
        "",                                 // quiet
        "cache:probe=skip:1:count:2",       // two probe faults
    };
    size_t next = 0;
    while (!stop.load()) {
      ASSERT_OK(FailPoint::ReArm(specs[next++ % specs.size()]).status());
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
    FailPoint::Reset();
  });

  struct Outcome {
    StatusCode code;
    size_t query;
    std::string fingerprint;
  };
  std::vector<std::vector<Outcome>> outcomes(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kQueriesPerClient; ++i) {
        size_t q = (c + i) % queries.size();
        auto result = service.Execute(queries[q], ExecMode::kSudafShare);
        Outcome o;
        o.query = q;
        o.code = result.ok() ? StatusCode::kOk : result.status().code();
        if (result.ok()) o.fingerprint = Fingerprint(**result);
        outcomes[c].push_back(o);
      }
    });
  }
  for (auto& t : clients) t.join();
  stop.store(true);
  chaos.join();

  // 1) Every request ended in a definite outcome, and OK answers are
  //    bitwise identical to the serial cold run.
  int64_t ok = 0;
  int64_t failed = 0;
  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(outcomes[c].size(), static_cast<size_t>(kQueriesPerClient));
    for (const Outcome& o : outcomes[c]) {
      if (o.code == StatusCode::kOk) {
        ++ok;
        EXPECT_EQ(o.fingerprint, want[o.query])
            << "chaos changed an answer for: " << queries[o.query];
      } else {
        ++failed;
        // Failures are typed, not arbitrary: only the injected transient
        // class (retry-exhausted) or shedding can surface.
        EXPECT_TRUE(o.code == StatusCode::kInternal ||
                    o.code == StatusCode::kResourceExhausted)
            << static_cast<int>(o.code);
      }
    }
  }

  // 2) Counters reconcile exactly.
  MetricsSnapshot snap = service.metrics().Snapshot();
  EXPECT_EQ(snap.counter("sudaf.service.requests"),
            kClients * kQueriesPerClient);
  EXPECT_EQ(snap.counter("sudaf.service.ok"), ok);
  EXPECT_EQ(snap.counter("sudaf.service.failed"), failed);
  EXPECT_EQ(ok + failed, kClients * kQueriesPerClient);
  // Every attempt made exactly one admission call, and every admission
  // call ended admitted, shed, or resolved by the guard.
  EXPECT_EQ(snap.counter("sudaf.service.admitted") +
                snap.counter("sudaf.service.shed") +
                snap.counter("sudaf.service.queue_timeouts") +
                snap.counter("sudaf.service.queue_cancelled"),
            snap.counter("sudaf.service.requests") +
                snap.counter("sudaf.service.retries"));
  // Nothing is left in flight or queued.
  EXPECT_EQ(snap.gauge("sudaf.service.inflight"), 0);

  // 3) The session survived: a post-chaos query on the same session is
  //    clean and correct.
  auto after = service.Execute(queries[0], ExecMode::kSudafShare);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(Fingerprint(**after), want[0]);
}

// Chaos shard for the batch path: a wide window and burst-submitting
// clients force real shared-scan groups while the failpoint cycle runs
// through the fused pass, the cache probe, and the cache insert — every
// fault a group can hit. Group faults degrade members to solo retries;
// nothing may produce a wrong answer or an untyped failure.
TEST_F(ChaosTest, BatchedSubmissionUnderCyclingFaultsStaysBitIdentical) {
  const std::vector<std::string> queries = Queries();

  std::vector<std::string> want(queries.size());
  {
    SudafSession ref(&catalog_);
    for (size_t q = 0; q < queries.size(); ++q) {
      auto r = ref.Execute(queries[q], ExecMode::kSudafShare);
      ASSERT_TRUE(r.ok()) << queries[q];
      want[q] = Fingerprint(**r);
    }
  }

  SudafSession session(&catalog_);
  ServiceOptions opts;
  opts.batch_window_ms = 4.0;   // wide: bursts land in one window
  opts.batch_max_queries = 6;
  opts.retry.max_attempts = 4;
  QueryService service(&session, opts);

  std::atomic<bool> stop{false};
  std::thread chaos([&] {
    const std::vector<const char*> specs = {
        "state_batch:morsel=skip:2",   // fault inside the fused group pass
        "",                            // quiet
        "cache:probe=skip:1:count:2",  // group leader's probe faults
        "cache:insert",                // one shared-representative insert
        "",                            // quiet
    };
    size_t next = 0;
    while (!stop.load()) {
      ASSERT_OK(FailPoint::ReArm(specs[next++ % specs.size()]).status());
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
    FailPoint::Reset();
  });

  constexpr int kClients = 6;
  constexpr int kQueriesPerClient = 8;
  std::atomic<int64_t> ok{0};
  std::atomic<int64_t> failed{0};
  std::atomic<int> wrong{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kQueriesPerClient; ++i) {
        size_t q = (c + i) % queries.size();
        // Submit-then-wait (not Execute): the ticket sits in the window
        // while sibling clients pile in, so groups actually form.
        QueryTicket ticket =
            service.Submit(queries[q], ExecMode::kSudafShare);
        auto result = ticket.Wait();
        if (result.ok()) {
          ok.fetch_add(1);
          if (Fingerprint(**result) != want[q]) wrong.fetch_add(1);
        } else {
          failed.fetch_add(1);
          StatusCode code = result.status().code();
          EXPECT_TRUE(code == StatusCode::kInternal ||
                      code == StatusCode::kResourceExhausted)
              << result.status().ToString();
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  stop.store(true);
  chaos.join();

  EXPECT_EQ(wrong.load(), 0) << "chaos changed a batched answer";
  EXPECT_EQ(ok.load() + failed.load(), kClients * kQueriesPerClient);

  MetricsSnapshot snap = service.metrics().Snapshot();
  EXPECT_EQ(snap.counter("sudaf.service.requests"),
            kClients * kQueriesPerClient);
  EXPECT_EQ(snap.counter("sudaf.service.ok"), ok.load());
  EXPECT_EQ(snap.counter("sudaf.service.failed"), failed.load());
  // Admission identity still balances with group admission in the mix.
  EXPECT_EQ(snap.counter("sudaf.service.admitted") +
                snap.counter("sudaf.service.shed") +
                snap.counter("sudaf.service.queue_timeouts") +
                snap.counter("sudaf.service.queue_cancelled"),
            snap.counter("sudaf.service.requests") +
                snap.counter("sudaf.service.retries"));
  // Batch identity: every admitted execution was coalesced or solo.
  EXPECT_EQ(snap.counter("sudaf.batch.coalesced") +
                snap.counter("sudaf.batch.solo"),
            snap.counter("sudaf.service.admitted"));
  EXPECT_EQ(snap.gauge("sudaf.service.inflight"), 0);
}

}  // namespace
}  // namespace sudaf

#ifndef SUDAF_TESTS_TEST_UTIL_H_
#define SUDAF_TESTS_TEST_UTIL_H_

// Shared helpers for the SUDAF test suite.

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "storage/catalog.h"

namespace sudaf {

// gtest helpers for Status/Result.
#define ASSERT_OK(expr)                                 \
  do {                                                  \
    const ::sudaf::Status _st = (expr);                 \
    ASSERT_TRUE(_st.ok()) << _st.ToString();            \
  } while (false)

#define EXPECT_OK(expr)                                 \
  do {                                                  \
    const ::sudaf::Status _st = (expr);                 \
    EXPECT_TRUE(_st.ok()) << _st.ToString();            \
  } while (false)

#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                   \
  ASSERT_OK_AND_ASSIGN_IMPL(SUDAF_CONCAT(_r_, __LINE__), lhs, rexpr)
#define ASSERT_OK_AND_ASSIGN_IMPL(tmp, lhs, rexpr)         \
  auto tmp = (rexpr);                                      \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();        \
  lhs = std::move(tmp).value();

namespace testing_util {

// Builds a single-table catalog: t(g INT64, x FLOAT64, y FLOAT64) with the
// given rows.
inline std::unique_ptr<Table> MakeXyTable(
    const std::vector<int64_t>& g, const std::vector<double>& x,
    const std::vector<double>& y) {
  Schema schema;
  SUDAF_CHECK(schema.AddField({"g", DataType::kInt64}).ok());
  SUDAF_CHECK(schema.AddField({"x", DataType::kFloat64}).ok());
  SUDAF_CHECK(schema.AddField({"y", DataType::kFloat64}).ok());
  auto table = std::make_unique<Table>(std::move(schema));
  for (size_t i = 0; i < g.size(); ++i) {
    table->column(0).AppendInt64(g[i]);
    table->column(1).AppendFloat64(x[i]);
    table->column(2).AppendFloat64(y[i]);
  }
  table->FinishBulkAppend();
  return table;
}

// Relative-tolerance comparison that treats two NaNs as equal.
inline void ExpectClose(double expected, double actual, double tol = 1e-9) {
  if (std::isnan(expected) && std::isnan(actual)) return;
  if (std::isinf(expected) || std::isinf(actual)) {
    EXPECT_EQ(expected, actual);
    return;
  }
  EXPECT_NEAR(actual, expected,
              tol * std::max({1.0, std::fabs(expected), std::fabs(actual)}))
      << "expected " << expected << ", got " << actual;
}

}  // namespace testing_util
}  // namespace sudaf

#endif  // SUDAF_TESTS_TEST_UTIL_H_

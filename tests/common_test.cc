// Tests for common/: Status, Result, Value, Rng.

#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/value.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "missing thing");
  EXPECT_EQ(st.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kUnimplemented,
        StatusCode::kInternal, StatusCode::kParseError,
        StatusCode::kTypeError}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Result<int> FailingHelper() { return Status::Internal("boom"); }

Result<int> PropagatingHelper() {
  SUDAF_ASSIGN_OR_RETURN(int v, FailingHelper());
  return v + 1;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> r = PropagatingHelper();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value(int64_t{7}).type(), DataType::kInt64);
  EXPECT_EQ(Value(3.5).type(), DataType::kFloat64);
  EXPECT_EQ(Value(std::string("hi")).type(), DataType::kString);
  EXPECT_TRUE(Value(int64_t{1}).is_numeric());
  EXPECT_FALSE(Value(std::string("x")).is_numeric());
}

TEST(ValueTest, AsDoubleCoercesIntegers) {
  EXPECT_DOUBLE_EQ(Value(int64_t{5}).AsDouble(), 5.0);
  EXPECT_DOUBLE_EQ(Value(2.25).AsDouble(), 2.25);
}

TEST(ValueTest, NumericEqualityCrossesTypes) {
  EXPECT_TRUE(Value(int64_t{3}).Equals(Value(3.0)));
  EXPECT_FALSE(Value(int64_t{3}).Equals(Value(3.5)));
  EXPECT_FALSE(Value(std::string("3")).Equals(Value(3.0)));
  EXPECT_TRUE(Value(std::string("ab")).Equals(Value(std::string("ab"))));
}

TEST(ValueTest, CompareOrdersNumericsAndStrings) {
  EXPECT_LT(Value(1.0).Compare(Value(int64_t{2})), 0);
  EXPECT_GT(Value(std::string("b")).Compare(Value(std::string("a"))), 0);
  EXPECT_EQ(Value(2.0).Compare(Value(int64_t{2})), 0);
  // Numerics sort before strings.
  EXPECT_LT(Value(9.0).Compare(Value(std::string("a"))), 0);
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value(int64_t{7}).ToString(), "7");
  EXPECT_EQ(Value(std::string("x")).ToString(), "'x'");
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DoublesInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBelowCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    uint64_t v = rng.NextBelow(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, LogNormalIsPositive) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.NextLogNormal(1.0, 2.0), 0.0);
  }
}

TEST(RngTest, GaussianRoughlyCentered) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian();
  EXPECT_NEAR(sum / n, 0.0, 0.05);
}

}  // namespace
}  // namespace sudaf

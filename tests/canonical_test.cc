// Tests for sudaf/canonical: canonical forms (F, ⊕, T), state factoring,
// coefficient/offset extraction and the splitting rules SR1/SR2 — Table 1
// and Section 4.1 of the paper.

#include <cmath>

#include "expr/evaluator.h"
#include "expr/parser.h"
#include "gtest/gtest.h"
#include "sudaf/canonical.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

using testing_util::ExpectClose;

CanonicalForm CanonicalizeString(const std::string& s) {
  auto expr = ParseExpression(s);
  SUDAF_CHECK_MSG(expr.ok(), expr.status().ToString());
  auto form = Canonicalize(**expr);
  SUDAF_CHECK_MSG(form.ok(), form.status().ToString());
  return std::move(*form);
}

// Evaluates a canonical form against a concrete multiset by computing each
// state directly, then applying T — the reference semantics for every test
// below.
double EvalForm(const CanonicalForm& form, const std::vector<double>& xs,
                const std::vector<double>& ys = {}) {
  std::vector<double> state_values;
  for (const AggStateDef& state : form.states) {
    double acc;
    switch (state.op) {
      case AggOp::kCount:
        acc = static_cast<double>(xs.size());
        break;
      default: {
        acc = state.op == AggOp::kProd ? 1.0 : 0.0;
        if (state.op == AggOp::kMin) acc = HUGE_VAL;
        if (state.op == AggOp::kMax) acc = -HUGE_VAL;
        for (size_t i = 0; i < xs.size(); ++i) {
          RowAccessor accessor = [&](const std::string& col,
                                     int64_t) -> Result<Value> {
            if (col == "x") return Value(xs[i]);
            if (col == "y") return Value(ys[i]);
            return Status::NotFound(col);
          };
          auto v = EvalRow(*state.input, accessor, 0);
          SUDAF_CHECK_MSG(v.ok(), v.status().ToString());
          double f = v->AsDouble();
          switch (state.op) {
            case AggOp::kSum:
              acc += f;
              break;
            case AggOp::kProd:
              acc *= f;
              break;
            case AggOp::kMin:
              acc = std::min(acc, f);
              break;
            case AggOp::kMax:
              acc = std::max(acc, f);
              break;
            default:
              break;
          }
        }
      }
    }
    state_values.push_back(acc);
  }
  auto out = EvalTerminating(*form.terminating[0], state_values);
  SUDAF_CHECK_MSG(out.ok(), out.status().ToString());
  return *out;
}

TEST(CanonicalTest, PowerMeanTable1) {
  // qm = (Σx²/n)^(1/2): exactly two states.
  CanonicalForm form = CanonicalizeString("(sum(x^2)/count())^(1/2)");
  ASSERT_EQ(form.states.size(), 2u);
  EXPECT_EQ(form.states[0].ToString(), "sum(x^2)");
  EXPECT_EQ(form.states[1].ToString(), "count()");
  ExpectClose(std::sqrt((1.0 + 4.0 + 9.0) / 3.0),
              EvalForm(form, {1.0, 2.0, 3.0}));
}

TEST(CanonicalTest, GeometricMeanUsesProduct) {
  CanonicalForm form = CanonicalizeString("prod(x)^(1/count())");
  ASSERT_EQ(form.states.size(), 2u);
  EXPECT_EQ(form.states[0].op, AggOp::kProd);
  ExpectClose(std::pow(24.0, 1.0 / 4.0), EvalForm(form, {1, 2, 3, 4}));
}

TEST(CanonicalTest, StddevSharesStatesAcrossSubexpressions) {
  // stddev uses Σx² and count and Σx; the two count() calls and the two
  // sum(x) calls deduplicate.
  CanonicalForm form =
      CanonicalizeString("sqrt(sum(x^2)/count() - (sum(x)/count())^2)");
  EXPECT_EQ(form.states.size(), 3u);
  ExpectClose(2.0, EvalForm(form, {2, 4, 4, 4, 5, 5, 7, 9}));
}

TEST(CanonicalTest, LogSumExpTable1) {
  CanonicalForm form = CanonicalizeString("ln(sum(exp(x)))");
  ASSERT_EQ(form.states.size(), 1u);
  ExpectClose(std::log(std::exp(1.0) + std::exp(2.0)),
              EvalForm(form, {1.0, 2.0}));
}

TEST(CanonicalTest, CovarianceTable1) {
  CanonicalForm form = CanonicalizeString(
      "sum(x*y)/count() - (sum(x)/count())*(sum(y)/count())");
  EXPECT_EQ(form.states.size(), 4u);  // Σxy, count, Σx, Σy
  ExpectClose(2.5, EvalForm(form, {1, 2, 3, 4}, {2, 4, 6, 8}));
}

TEST(CanonicalTest, CorrelationTable1) {
  CanonicalForm form = CanonicalizeString(
      "(count()*sum(x*y) - sum(x)*sum(y))"
      " / (sqrt(count()*sum(x^2) - sum(x)^2)"
      "    * sqrt(count()*sum(y^2) - sum(y)^2))");
  EXPECT_EQ(form.states.size(), 6u);  // the Table 1 correlation row
  ExpectClose(1.0, EvalForm(form, {1, 2, 3}, {2, 4, 6}));
}

TEST(CanonicalTest, Theta1MotivatingExample) {
  // Section 2: SUDAF identifies exactly 5 partial aggregates in theta1.
  CanonicalForm form = CanonicalizeString(
      "(count()*sum(x*y) - sum(y)*sum(x)) / (count()*sum(x^2) - sum(x)^2)");
  EXPECT_EQ(form.states.size(), 5u);
  // Perfect line y = 2x + 1 => slope 2.
  ExpectClose(2.0, EvalForm(form, {1, 2, 3, 4}, {3, 5, 7, 9}));
}

TEST(CanonicalTest, CoefficientExtraction) {
  // Σ(4x²) = 4·Σx²: the interned state is the reduced Σx².
  CanonicalForm form = CanonicalizeString("sum(4*x^2)");
  ASSERT_EQ(form.states.size(), 1u);
  EXPECT_EQ(form.states[0].ToString(), "sum(x^2)");
  ExpectClose(4.0 * (1.0 + 4.0), EvalForm(form, {1.0, 2.0}));
}

TEST(CanonicalTest, CoefficientExtractionMakesVariantsShareStates) {
  // Σ4x² and Σ(3x)² intern the SAME reduced state Σx² (Example 5.2's point:
  // no repeated mathematical transformations, one shared computation).
  auto e1 = ParseExpression("sum(4*x^2)");
  auto e2 = ParseExpression("sum((3*x)^2)");
  ASSERT_TRUE(e1.ok() && e2.ok());
  auto form = Canonicalize({e1->get(), e2->get()});
  ASSERT_TRUE(form.ok());
  EXPECT_EQ(form->states.size(), 1u);
}

TEST(CanonicalTest, SplittingRuleSR1) {
  // SR1: Σ(x² + x) = Σx² + Σx.
  CanonicalForm form = CanonicalizeString("sum(x^2 + x)");
  ASSERT_EQ(form.states.size(), 2u);
  ExpectClose((1 + 4 + 9) + (1 + 2 + 3), EvalForm(form, {1, 2, 3}));
}

TEST(CanonicalTest, SplittingRuleSR1WithConstants) {
  // Σ(2x - 3) = 2Σx - 3·count().
  CanonicalForm form = CanonicalizeString("sum(2*x - 3)");
  ASSERT_EQ(form.states.size(), 2u);  // Σx and count
  bool has_count = false;
  for (const auto& s : form.states) {
    if (s.op == AggOp::kCount) has_count = true;
  }
  EXPECT_TRUE(has_count);
  ExpectClose(2.0 * 6.0 - 9.0, EvalForm(form, {1, 2, 3}));
}

TEST(CanonicalTest, SplittingRuleSR2) {
  // SR2: Π(x²·2^x) = Πx² · Π2^x.
  CanonicalForm form = CanonicalizeString("prod(x^2 * 2^x)");
  ASSERT_EQ(form.states.size(), 2u);
  double expected = (1.0 * 4.0) * std::pow(2.0, 3.0);
  ExpectClose(expected, EvalForm(form, {1.0, 2.0}));
}

TEST(CanonicalTest, SR2Division) {
  // Π(x / 2^x) = Πx / Π2^x.
  CanonicalForm form = CanonicalizeString("prod(x / 2^x)");
  ASSERT_EQ(form.states.size(), 2u);
  ExpectClose((1.0 / 2.0) * (2.0 / 4.0), EvalForm(form, {1.0, 2.0}));
}

TEST(CanonicalTest, SR2KeepsMonomialsTogether) {
  // Π(x·y) is one abstract-column state, not Πx · Πy.
  CanonicalForm form = CanonicalizeString("prod(x*y)");
  EXPECT_EQ(form.states.size(), 1u);
}

TEST(CanonicalTest, ProductConstantFactor) {
  // Π(2x) = 2^count() · Πx.
  CanonicalForm form = CanonicalizeString("prod(2*x)");
  ASSERT_EQ(form.states.size(), 2u);
  ExpectClose(std::pow(2.0, 3.0) * 6.0, EvalForm(form, {1, 2, 3}));
}

TEST(CanonicalTest, MinMaxStatesAreOpaqueButUsable) {
  CanonicalForm form = CanonicalizeString("max(x) - min(x)");
  ASSERT_EQ(form.states.size(), 2u);
  ExpectClose(8.0, EvalForm(form, {1.0, 4.0, 9.0}));
}

TEST(CanonicalTest, DescribeRendersTable1Style) {
  CanonicalForm form = CanonicalizeString("(sum(x^2)/count())^(1/2)");
  std::string description = form.Describe(0);
  EXPECT_NE(description.find("F = ("), std::string::npos);
  EXPECT_NE(description.find("T = "), std::string::npos);
}

TEST(CanonicalTest, StateKeysDistinguishOps) {
  AggStateDef sum_state =
      MakeState(AggOp::kSum, std::move(*ParseExpression("x")));
  AggStateDef prod_state =
      MakeState(AggOp::kProd, std::move(*ParseExpression("x")));
  EXPECT_NE(sum_state.Key(), prod_state.Key());
}

}  // namespace
}  // namespace sudaf

// Incremental cache maintenance over append-only tables
// (docs/execution.md, "Incremental maintenance"; docs/robustness.md,
// "Durability contract").
//
// The property under test everywhere: appending rows and re-running a
// cached query folds a fused pass over ONLY the delta segments into the
// cached states, and the refreshed answer is bit-identical — not
// approximately equal — to a cold run over the same table history, at any
// thread count, under injected faults, and across a kill-and-recover of
// the persistence layer.

#include <atomic>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "storage/catalog.h"
#include "sudaf/session.h"
#include "tests/test_util.h"

namespace sudaf {
namespace {

// ---------------------------------------------------------------------------
// Catalog: append vs rewrite epochs and the segment log
// ---------------------------------------------------------------------------

TEST(CatalogEpochsTest, AppendAdvancesAppendEpochAndSegmentLogOnly) {
  Catalog cat;
  cat.PutTable("t", testing_util::MakeXyTable({0, 1}, {1.0, 2.0}, {0, 0}));
  const CatalogEpochs e0 = cat.TableEpochs("t");
  EXPECT_EQ(cat.TableSegments("t"), (std::vector<int64_t>{2}));

  ASSERT_OK(cat.AppendRows("t", *testing_util::MakeXyTable({2}, {3.0}, {0})));
  const CatalogEpochs e1 = cat.TableEpochs("t");
  EXPECT_EQ(e1.rewrite, e0.rewrite);  // appends never look destructive
  EXPECT_NE(e1.append, e0.append);
  EXPECT_EQ(cat.TableSegments("t"), (std::vector<int64_t>{2, 3}));
  EXPECT_EQ((*cat.GetTable("t"))->num_rows(), 3);

  // A destructive touch advances the rewrite epoch and collapses the
  // segment log back to one segment covering the whole table.
  cat.TouchTable("t");
  const CatalogEpochs e2 = cat.TableEpochs("t");
  EXPECT_NE(e2.rewrite, e1.rewrite);
  EXPECT_EQ(cat.TableSegments("t"), (std::vector<int64_t>{3}));
}

TEST(CatalogEpochsTest, NotifyAppendRecordsGrowthOfExternalTables) {
  auto owned = testing_util::MakeXyTable({0}, {1.0}, {0});
  Catalog cat;
  cat.PutExternalTable("t", owned.get());
  const CatalogEpochs e0 = cat.TableEpochs("t");

  owned->column(0).AppendInt64(1);
  owned->column(1).AppendFloat64(2.0);
  owned->column(2).AppendFloat64(0.0);
  owned->FinishBulkAppend();
  ASSERT_OK(cat.NotifyAppend("t"));
  EXPECT_EQ(cat.TableEpochs("t").rewrite, e0.rewrite);
  EXPECT_EQ(cat.TableSegments("t"), (std::vector<int64_t>{1, 2}));
}

TEST(CatalogEpochsTest, NotifyAppendOnShrunkTableDegradesToRewrite) {
  auto owned = testing_util::MakeXyTable({0, 1, 2}, {1, 2, 3}, {0, 0, 0});
  Catalog cat;
  cat.PutExternalTable("t", owned.get());
  const CatalogEpochs e0 = cat.TableEpochs("t");
  ASSERT_EQ(cat.TableSegments("t").back(), 3);

  // The owner replaced the table's contents with fewer rows and then
  // (wrongly) reported it as an append. The catalog must treat that as
  // destructive: refreshing from a log that no longer describes the data
  // would serve wrong answers.
  *owned = std::move(*testing_util::MakeXyTable({9}, {9.0}, {0}));
  Status s = cat.NotifyAppend("t");
  EXPECT_FALSE(s.ok());
  const CatalogEpochs e1 = cat.TableEpochs("t");
  EXPECT_NE(e1.rewrite, e0.rewrite);  // hard invalidation, never stale
  EXPECT_EQ(cat.TableSegments("t"), (std::vector<int64_t>{1}));
}

// Regression for the combined-epoch aliasing bug: the old scheme summed
// raw per-table epochs, so `{A:2, B:1}` and `{A:1, B:2}` produced the same
// combination and a persisted set could be silently revived after the
// "wrong" table moved. Name-hash mixing makes the combination sensitive to
// WHICH table moved, not just by how much in total.
TEST(CatalogEpochsTest, CombinedEpochsDoNotAliasAcrossTables) {
  Catalog a, b;
  for (Catalog* c : {&a, &b}) {
    c->PutTable("A", testing_util::MakeXyTable({0}, {1.0}, {0}));
    c->PutTable("B", testing_util::MakeXyTable({0}, {1.0}, {0}));
  }
  ASSERT_EQ(a.TablesEpochs({"A", "B"}), b.TablesEpochs({"A", "B"}));

  // Same total number of mutations, different distribution over tables.
  a.TouchTable("A");
  b.TouchTable("B");
  EXPECT_NE(a.TablesEpochs({"A", "B"}).rewrite,
            b.TablesEpochs({"A", "B"}).rewrite);

  // The append component is mixed the same way.
  ASSERT_OK(a.AppendRows("A", *testing_util::MakeXyTable({1}, {2.0}, {0})));
  ASSERT_OK(b.AppendRows("B", *testing_util::MakeXyTable({1}, {2.0}, {0})));
  EXPECT_NE(a.TablesEpochs({"A", "B"}).append,
            b.TablesEpochs({"A", "B"}).append);

  // And unrelated tables do not perturb the combination.
  a.PutTable("C", testing_util::MakeXyTable({0}, {1.0}, {0}));
  const CatalogEpochs before = a.TablesEpochs({"A", "B"});
  a.TouchTable("C");
  EXPECT_EQ(a.TablesEpochs({"A", "B"}), before);
}

// Moving a catalog that another thread is concurrently using used to be
// silent undefined behavior; now it aborts with a diagnostic. The child
// process hammers reads from one thread while the main thread moves — the
// in-flight guard must observe the overlap and abort loudly.
TEST(CatalogMoveSafetyDeathTest, MoveWhileInUseAbortsLoudly) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Catalog cat;
        cat.PutTable("t", testing_util::MakeXyTable({0}, {1.0}, {0}));
        std::atomic<bool> stop{false};
        std::thread reader([&] {
          while (!stop.load(std::memory_order_relaxed)) {
            (void)cat.HasTable("t");
          }
        });
        for (int i = 0; i < 50000000 && !stop.load(); ++i) {
          Catalog other(std::move(cat));
          cat = std::move(other);
        }
        stop = true;
        reader.join();
      },
      "in flight");
}

TEST(CatalogMoveSafetyTest, QuiescentMovePreservesEpochState) {
  Catalog cat;
  cat.PutTable("t", testing_util::MakeXyTable({0, 1}, {1.0, 2.0}, {0, 0}));
  ASSERT_OK(cat.AppendRows("t", *testing_util::MakeXyTable({2}, {3.0}, {0})));
  const CatalogEpochs before = cat.TableEpochs("t");

  Catalog moved(std::move(cat));
  EXPECT_EQ(moved.TableEpochs("t"), before);
  EXPECT_EQ(moved.TableSegments("t"), (std::vector<int64_t>{2, 3}));
  EXPECT_EQ((*moved.GetTable("t"))->num_rows(), 3);
}

// ---------------------------------------------------------------------------
// End-to-end incremental refresh
// ---------------------------------------------------------------------------

class IncrementalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_.PutTable("t", MakeBase());
    cold_catalog_.PutTable("t", MakeBase());
    session_ = std::make_unique<SudafSession>(&catalog_);
  }
  void TearDown() override { FailPoint::DeactivateAll(); }

  static std::unique_ptr<Table> MakeBase() {
    Rng rng(7);
    return MakeDelta(&rng, 96, /*num_groups=*/5);
  }

  static std::unique_ptr<Table> MakeDelta(Rng* rng, int n, int num_groups) {
    std::vector<int64_t> g;
    std::vector<double> x, y;
    for (int i = 0; i < n; ++i) {
      g.push_back(static_cast<int64_t>(rng->NextBelow(num_groups)));
      double xv = rng->NextDoubleIn(-3.0, 9.0);
      x.push_back(xv);
      y.push_back(0.5 * xv + rng->NextDoubleIn(-1.0, 1.0));
    }
    return testing_util::MakeXyTable(g, x, y);
  }

  // Bit-exact digest: the refresh property is "the same doubles", not
  // "approximately equal".
  static std::string Fingerprint(const Table& t) {
    std::string fp;
    for (int c = 0; c < t.num_columns(); ++c) {
      for (int64_t r = 0; r < t.num_rows(); ++r) {
        if (t.column(c).type() == DataType::kInt64) {
          int64_t v = t.column(c).GetInt64(r);
          fp.append(reinterpret_cast<const char*>(&v), sizeof(v));
        } else {
          double v = t.column(c).GetFloat64(r);
          fp.append(reinterpret_cast<const char*>(&v), sizeof(v));
        }
      }
    }
    return fp;
  }

  struct RunOut {
    std::string fp;
    ExecStats stats;
  };

  RunOut Run(SudafSession* s, const std::string& sql,
             const ExecOptions& exec) {
    auto result = s->Execute(sql, ExecMode::kSudafShare, exec);
    SUDAF_CHECK_MSG(result.ok(), result.status().ToString());
    return {Fingerprint(**result), result->stats};
  }

  // Cold reference: a fresh (empty-cache) session over a catalog with the
  // identical table content AND segment history. The determinism rule says
  // the fused accumulation tree is a pure function of the segment log, so
  // this is the exact run the refreshed states must match bitwise.
  std::string ColdFingerprint(const std::string& sql,
                              const ExecOptions& exec) {
    SudafSession cold(&cold_catalog_);
    return Run(&cold, sql, exec).fp;
  }

  static ExecOptions Threads(int n) {
    ExecOptions exec;
    if (n > 1) {
      exec.parallel = true;
      exec.num_threads = n;
    }
    return exec;
  }

  Catalog catalog_;
  Catalog cold_catalog_;  // receives identical appends, never cached
  std::unique_ptr<SudafSession> session_;
};

constexpr const char* kSql =
    "SELECT g, sum(x), avg(y), var(x) FROM t GROUP BY g ORDER BY g";

// Acceptance: appending rows and re-running scans only the delta segments
// (asserted via delta_rows_scanned), bit-identical to the cold run, at
// threads {1, 2, 8}.
TEST_F(IncrementalTest, AppendThenRerunScansOnlyDelta) {
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    SetUp();  // fresh catalogs + session per thread count
    const ExecOptions exec = Threads(threads);

    RunOut cold = Run(session_.get(), kSql, exec);
    EXPECT_EQ(cold.stats.cache_delta_refreshes, 0);
    EXPECT_EQ(cold.fp, ColdFingerprint(kSql, exec));

    Rng rng(101);
    auto delta = MakeDelta(&rng, 32, /*num_groups=*/7);  // two new groups
    ASSERT_OK(catalog_.AppendRows("t", *delta));
    ASSERT_OK(cold_catalog_.AppendRows("t", *delta));

    RunOut warm = Run(session_.get(), kSql, exec);
    EXPECT_EQ(warm.stats.cache_delta_refreshes, 1);
    EXPECT_EQ(warm.stats.cache_delta_rows_scanned, 32);  // ≪ 128 total
    EXPECT_EQ(warm.stats.cache_full_invalidations, 0);
    EXPECT_EQ(warm.fp, ColdFingerprint(kSql, exec))
        << "refreshed states diverge from a cold run";

    // Third run: the refreshed set is now current and serves as-is.
    RunOut again = Run(session_.get(), kSql, exec);
    EXPECT_GT(again.stats.states_from_cache, 0);
    EXPECT_FALSE(again.stats.scanned_base_data);
    EXPECT_EQ(again.fp, warm.fp);
  }
}

// A destructive rewrite between runs must hard-invalidate, never refresh.
TEST_F(IncrementalTest, RewriteStillHardInvalidates) {
  const ExecOptions exec;
  Run(session_.get(), kSql, exec);
  auto next = MakeBase();
  catalog_.PutTable("t", std::move(next));
  cold_catalog_.PutTable("t", MakeBase());

  RunOut out = Run(session_.get(), kSql, exec);
  EXPECT_EQ(out.stats.cache_delta_refreshes, 0);
  EXPECT_EQ(out.stats.cache_full_invalidations, 1);
  EXPECT_EQ(out.fp, ColdFingerprint(kSql, exec));
}

// The ungrouped (scalar aggregate) shape refreshes too: group remap is the
// degenerate single-group case.
TEST_F(IncrementalTest, UngroupedQueryRefreshes) {
  const std::string sql = "SELECT sum(x), count(x), avg(y) FROM t";
  const ExecOptions exec;
  Run(session_.get(), sql, exec);
  Rng rng(55);
  auto delta = MakeDelta(&rng, 16, 5);
  ASSERT_OK(catalog_.AppendRows("t", *delta));
  ASSERT_OK(cold_catalog_.AppendRows("t", *delta));

  RunOut warm = Run(session_.get(), sql, exec);
  EXPECT_EQ(warm.stats.cache_delta_refreshes, 1);
  EXPECT_EQ(warm.stats.cache_delta_rows_scanned, 16);
  EXPECT_EQ(warm.fp, ColdFingerprint(sql, exec));
}

// A fault inside the refresh's delta pass abandons the refresh and falls
// back to a full rescan — the query still succeeds with bit-identical
// results, and the abandonment is visible as a full invalidation.
TEST_F(IncrementalTest, RefreshFaultFallsBackToFullRescan) {
  const ExecOptions exec;
  Run(session_.get(), kSql, exec);
  Rng rng(77);
  auto delta = MakeDelta(&rng, 24, 5);
  ASSERT_OK(catalog_.AppendRows("t", *delta));
  ASSERT_OK(cold_catalog_.AppendRows("t", *delta));

  // The first morsel this query executes is in the refresh's delta pass.
  FailPoint::Activate("state_batch:morsel", Status::Internal("delta fault"),
                      /*skip=*/0, /*count=*/1);
  RunOut out = Run(session_.get(), kSql, exec);
  FailPoint::DeactivateAll();
  EXPECT_EQ(out.stats.cache_delta_refreshes, 0);
  EXPECT_EQ(out.stats.cache_full_invalidations, 1);
  EXPECT_EQ(out.fp, ColdFingerprint(kSql, exec));
}

// The accounting identity the CI perf gate enforces, checked at the
// counter level across a hit / refresh / invalidation mix.
TEST_F(IncrementalTest, ProbeAccountingIdentityHolds) {
  const ExecOptions exec;
  Run(session_.get(), kSql, exec);  // miss (not a probe: no present set)
  Run(session_.get(), kSql, exec);  // hit
  Rng rng(13);
  ASSERT_OK(catalog_.AppendRows("t", *MakeDelta(&rng, 8, 5)));
  Run(session_.get(), kSql, exec);  // delta refresh
  catalog_.TouchTable("t");
  Run(session_.get(), kSql, exec);  // full invalidation

  const StateCache::Counters c = session_->cache().counters();
  EXPECT_EQ(c.set_hits, 1);
  EXPECT_EQ(c.delta_refreshes, 1);
  EXPECT_EQ(c.full_invalidations, 1);
  EXPECT_EQ(c.set_hits + c.delta_refreshes + c.full_invalidations, c.probes);
}

// Satellite: the append-loop property. N rounds of (append random rows →
// run the cached query), each round bit-identical to a cold run over the
// same table history, at 1 and 8 threads, with probe/morsel faults
// injected along the way. Faulted queries either fail cleanly (and the
// deactivated retry matches cold) or degrade to a full rescan that
// matches cold — stale or torn state is never served.
TEST_F(IncrementalTest, AppendLoopStaysBitIdenticalToColdRuns) {
  constexpr int kRounds = 6;
  for (int threads : {1, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    SetUp();
    const ExecOptions exec = Threads(threads);
    Rng rng(2026);

    Run(session_.get(), kSql, exec);  // cold seed
    for (int round = 0; round < kRounds; ++round) {
      SCOPED_TRACE("round=" + std::to_string(round));
      const int n = 1 + static_cast<int>(rng.NextBelow(40));
      auto delta = MakeDelta(&rng, n, /*num_groups=*/5 + round);
      ASSERT_OK(catalog_.AppendRows("t", *delta));
      ASSERT_OK(cold_catalog_.AppendRows("t", *delta));

      if (round == 2) {
        // Probe fault: the query fails cleanly; nothing is corrupted.
        FailPoint::Activate("cache:probe", Status::Internal("probe fault"));
        auto failed = session_->Execute(kSql, ExecMode::kSudafShare, exec);
        EXPECT_FALSE(failed.ok());
        FailPoint::DeactivateAll();
      }
      if (round == 4) {
        // Morsel fault in the refresh pass: degrade to full rescan below.
        FailPoint::Activate("state_batch:morsel",
                            Status::Internal("morsel fault"), /*skip=*/0,
                            /*count=*/1);
      }
      RunOut out = Run(session_.get(), kSql, exec);
      FailPoint::DeactivateAll();
      EXPECT_EQ(out.fp, ColdFingerprint(kSql, exec));
    }
    // The loop actually exercised the incremental path, not cold reruns.
    EXPECT_GE(session_->cache().counters().delta_refreshes, kRounds - 2);
  }
}

// ---------------------------------------------------------------------------
// Kill-and-recover: a torn refresh journal yields a full recompute,
// never a stale answer (docs/robustness.md, "Durability contract").
// ---------------------------------------------------------------------------

class IncrementalCrashTest : public IncrementalTest {
 protected:
  void SetUp() override {
    IncrementalTest::SetUp();
    dir_ = ::testing::TempDir() + "/sudaf_incremental_crash";
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    FailPoint::DeactivateAll();
    std::filesystem::remove_all(dir_);
  }

  std::string dir_;
};

TEST_F(IncrementalCrashTest, TornRefreshJournalRecoversToCorrectAnswers) {
  // skip=0 tears the refresh's erase record (the old set survives on disk
  // with its old coverage); skip=1 lands the erase and tears the create
  // (no set survives). Both must recover to bit-identical answers.
  for (int skip : {0, 1}) {
    SCOPED_TRACE("skip=" + std::to_string(skip));
    IncrementalTest::SetUp();
    std::string dir = dir_ + "/run" + std::to_string(skip);
    const ExecOptions exec;

    {  // Session A: populate, append, refresh with a torn WAL, "die".
      SudafSession a(&catalog_);
      ASSERT_OK(a.EnableCachePersistence(dir));
      Run(&a, kSql, exec);

      Rng rng(31);
      auto delta = MakeDelta(&rng, 20, 6);
      ASSERT_OK(catalog_.AppendRows("t", *delta));
      ASSERT_OK(cold_catalog_.AppendRows("t", *delta));

      FailPoint::Activate("cache:wal_append", Status::Internal("torn"),
                          skip, /*count=*/1000000);
      RunOut out = Run(&a, kSql, exec);  // WAL faults never fail queries
      EXPECT_EQ(out.stats.cache_delta_refreshes, 1);
      FailPoint::DeactivateAll();
      // The session dies here with a torn refresh journal — the "kill".
    }

    // Session B: recovery must drop the torn tail and serve answers that
    // match a cold run — via a second delta refresh (skip=0: the old set
    // survived with its old coverage) or a full recompute (skip=1).
    SudafSession b(&catalog_);
    ASSERT_OK(b.EnableCachePersistence(dir));
    RunOut out = Run(&b, kSql, exec);
    EXPECT_EQ(out.fp, ColdFingerprint(kSql, exec));
    if (skip == 0) {
      EXPECT_EQ(out.stats.cache_delta_refreshes, 1);
    } else {
      EXPECT_EQ(out.stats.cache_delta_refreshes, 0);
    }
    // And the recovered + re-resolved states serve the next run as-is.
    RunOut again = Run(&b, kSql, exec);
    EXPECT_GT(again.stats.states_from_cache, 0);
    EXPECT_EQ(again.fp, out.fp);
  }
}

// A clean kill-and-reopen after appends: the recovered set lags only in
// append epoch, so the reopened session refreshes instead of rescanning
// the whole table.
TEST_F(IncrementalCrashTest, RecoveredSetsRefreshAcrossRestart) {
  std::string dir = dir_ + "/restart";
  const ExecOptions exec;
  {
    SudafSession a(&catalog_);
    ASSERT_OK(a.EnableCachePersistence(dir));
    Run(&a, kSql, exec);
  }
  Rng rng(41);
  auto delta = MakeDelta(&rng, 12, 5);
  ASSERT_OK(catalog_.AppendRows("t", *delta));
  ASSERT_OK(cold_catalog_.AppendRows("t", *delta));

  SudafSession b(&catalog_);
  ASSERT_OK(b.EnableCachePersistence(dir));
  EXPECT_GT(b.cache().num_entries(), 0);  // survived the restart
  RunOut out = Run(&b, kSql, exec);
  EXPECT_EQ(out.stats.cache_delta_refreshes, 1);
  EXPECT_EQ(out.stats.cache_delta_rows_scanned, 12);
  EXPECT_EQ(out.fp, ColdFingerprint(kSql, exec));
}

}  // namespace
}  // namespace sudaf

// Kill-and-recover torture harness (docs/robustness.md, "Durability
// contract").
//
// The FaultVfs power-cut tests simulate crashes; this tool delivers real
// ones. A supervisor fork/execs a worker copy of itself that runs a
// persistence-heavy query loop, SIGKILLs it — either from the inside at a
// precise persistence site (SUDAF_FAILPOINT_KILL, common/failpoint.h) or
// from the outside at a randomized wall-clock moment — then recovers the
// store in-process and checks every query answer bit-for-bit against a
// cold run. Any divergence, failed recovery, or worker error fails the
// round.
//
// The worker also appends deterministic row deltas to the base table and
// re-runs the fixed queries after each one, so the incremental-refresh
// path (docs/execution.md, "Incremental maintenance") journals refreshed
// sets — erase + re-create + entries — right up to the SIGKILL. Both
// processes build the exact same table history, so a recovered set's
// covered-row boundary either lands on the supervisor's segment log
// (epoch hit or delta refresh, depending on how far the worker got) or
// past it (hard invalidation). All three probe outcomes must converge to
// bit-identical answers.
//
//   $ torture [--rounds N] [--seed S] [--dir D] [--timeout-ms T]
//
// Exit status 0 iff every round recovered bit-identically. CI runs 20
// rounds per shard (tools/check.sh --torture).

#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/crc32c.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "datagen/milan_like.h"
#include "sudaf/session.h"

namespace sudaf {
namespace {

// Small, fully deterministic dataset: rounds must be fast and every
// process (worker, supervisor, cold reference) must see identical rows.
void SetupCatalog(Catalog* catalog) {
  MilanOptions milan;
  milan.num_rows = 4000;
  catalog->PutTable("milan_data", GenerateMilanData(milan));
}

// Deterministic append deltas. Worker and supervisor must build the exact
// same table history: a recovered set's covered-row boundary refreshes
// only if it is a boundary in the live catalog's segment log
// (sudaf/session.cc, RefreshGroupSet). The supervisor applies
// kSupervisorAppends of these before computing the cold reference; the
// worker applies them one by one as it runs, so where the SIGKILL lands
// decides whether recovered sets hit exactly, refresh from a delta, or
// get discarded for covering rows past the supervisor's table.
constexpr int64_t kDeltaRows = 400;
constexpr int kSupervisorAppends = 2;

std::unique_ptr<Table> MakeDelta(int index) {
  MilanOptions milan;
  milan.num_rows = kDeltaRows;
  milan.seed = 0xde17a + static_cast<uint64_t>(index);
  return GenerateMilanData(milan);
}

Status SetupSession(SudafSession* session) {
  // A library UDAF so the share-mode rewriter and the state cache are both
  // on the persistence path (states from `tvar` are cached and journaled).
  return session->library().Define(
      "tvar", {"x"}, "sum(x^2)/count(x) - (sum(x)/count(x))^2");
}

// The fixed verification queries. Share mode: after recovery they are
// served (partially) from recovered cache states, so a single flipped bit
// anywhere in the snapshot/WAL/recovery path changes the fingerprint.
std::vector<std::string> VerifyQueries() {
  return {
      "SELECT square_id, tvar(internet_traffic) FROM milan_data "
      "GROUP BY square_id ORDER BY square_id;",
      "SELECT square_id, tvar(internet_traffic), avg(internet_traffic) "
      "FROM milan_data WHERE internet_traffic > 5 GROUP BY square_id "
      "ORDER BY square_id;",
      "SELECT square_id, stddev(internet_traffic), sum(internet_traffic) "
      "FROM milan_data WHERE square_id < 40 GROUP BY square_id "
      "ORDER BY square_id;",
  };
}

// CRC32C over the raw value buffers — doubles hash as their exact bit
// patterns, so "bit-identical" means exactly that.
uint32_t FingerprintTable(const Table& table) {
  uint32_t crc = 0;
  const int64_t rows = table.num_rows();
  crc = Crc32c(&rows, sizeof(rows), crc);
  for (int c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.column(c);
    switch (col.type()) {
      case DataType::kInt64:
        crc = Crc32c(col.ints().data(), col.ints().size() * sizeof(int64_t),
                     crc);
        break;
      case DataType::kFloat64:
        crc = Crc32c(col.doubles().data(),
                     col.doubles().size() * sizeof(double), crc);
        break;
      case DataType::kString:
        for (int64_t r = 0; r < col.size(); ++r) {
          const std::string& s = col.GetString(r);
          crc = Crc32c(s.data(), s.size(), crc);
        }
        break;
    }
  }
  return crc;
}

// Runs the verification queries and returns their fingerprints; any query
// failure is fatal for the calling round.
Result<std::vector<uint32_t>> RunAndFingerprint(SudafSession* session) {
  std::vector<uint32_t> prints;
  for (const std::string& sql : VerifyQueries()) {
    Result<QueryResult> r = session->Execute(sql, ExecMode::kSudafShare);
    if (!r.ok()) return r.status();
    prints.push_back(FingerprintTable(**r));
  }
  return prints;
}

// --- Worker ---------------------------------------------------------------
//
// Runs forever (the supervisor kills it): enables persistence on `dir`,
// then issues an endless stream of *distinct* share-mode queries so fresh
// states keep entering the cache and the WAL keeps growing — every
// iteration crosses the vfs:write / vfs:fsync / cache:wal_append sites an
// armed SUDAF_FAILPOINT_KILL can fire at. A tiny WAL budget keeps the
// snapshot-rewrite (compaction) sites hot too.
int RunWorker(const std::string& dir, uint64_t seed) {
  Catalog catalog;
  SetupCatalog(&catalog);
  SessionOptions opts;
  opts.set_wal_max_bytes(8192);
  SudafSession session(&catalog, opts);
  Status st = SetupSession(&session);
  if (!st.ok()) {
    std::fprintf(stderr, "worker: define failed: %s\n",
                 st.ToString().c_str());
    return 2;
  }
  // Arms the SIGKILL site the supervisor put in the environment (and any
  // SUDAF_FAILPOINTS error specs). A parse error here means the supervisor
  // built a bad spec — loud failure, not a silent no-fault run.
  auto armed = FailPoint::ActivateFromEnv();
  if (!armed.ok()) {
    std::fprintf(stderr, "worker: %s\n", armed.status().ToString().c_str());
    return 2;
  }
  st = session.EnableCachePersistence(dir);
  if (!st.ok()) {
    std::fprintf(stderr, "worker: enable persistence failed: %s\n",
                 st.ToString().c_str());
    return 2;
  }
  Rng rng(seed);
  char sql[512];
  int appends = 0;
  for (int iter = 0;; ++iter) {
    // Distinct thresholds → distinct predicates → new cache inserts.
    double cut = static_cast<double>(rng.NextBelow(4000)) / 100.0;
    std::snprintf(sql, sizeof(sql),
                  "SELECT square_id, tvar(internet_traffic) FROM milan_data "
                  "WHERE internet_traffic > %.2f GROUP BY square_id "
                  "ORDER BY square_id;",
                  cut);
    Result<QueryResult> r = session.Execute(sql, ExecMode::kSudafShare);
    if (!r.ok()) {
      std::fprintf(stderr, "worker: query failed: %s\n",
                   r.status().ToString().c_str());
      return 2;
    }
    if (iter % 3 != 2) continue;
    // Append the next deterministic delta and re-run the fixed queries:
    // their cached sets now lag in append epoch and refresh, journaling
    // erase + re-create + entries — the torn-refresh sites under test.
    Status ap = catalog.AppendRows("milan_data", *MakeDelta(appends++));
    if (!ap.ok()) {
      std::fprintf(stderr, "worker: append failed: %s\n",
                   ap.ToString().c_str());
      return 2;
    }
    for (const std::string& vsql : VerifyQueries()) {
      Result<QueryResult> vr = session.Execute(vsql, ExecMode::kSudafShare);
      if (!vr.ok()) {
        std::fprintf(stderr, "worker: refresh query failed: %s\n",
                     vr.status().ToString().c_str());
        return 2;
      }
    }
  }
}

// --- Supervisor -----------------------------------------------------------

struct TortureOptions {
  int rounds = 20;
  uint64_t seed = 0x50daf;
  std::string dir;
  int timeout_ms = 4000;
};

// Persistence sites a round can SIGKILL at, spanning both layers: the Vfs
// primitives (fd writes, fsyncs, renames, directory syncs) and the
// journal operations built on them.
const char* const kKillSites[] = {
    "vfs:open",        "vfs:write",          "vfs:fsync",
    "vfs:rename",      "vfs:dirsync",        "cache:wal_append",
    "cache:snapshot_write", "cache:snapshot_rename",
};

int64_t NowMs() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return ts.tv_sec * 1000 + ts.tv_nsec / 1000000;
}

// Forks and execs `self --worker dir seed` with `kill_spec` (may be empty
// for timed-kill rounds) in the child environment. Returns the child pid.
pid_t SpawnWorker(const char* self, const std::string& dir, uint64_t seed,
                  const std::string& kill_spec) {
  pid_t pid = fork();
  if (pid != 0) return pid;
  // Child. Build argv/envp and exec a fresh process image; only
  // async-signal-safe calls before execve.
  std::string seed_str = std::to_string(seed);
  const char* argv[] = {self, "--worker", dir.c_str(), seed_str.c_str(),
                        nullptr};
  std::string kill_env = "SUDAF_FAILPOINT_KILL=" + kill_spec;
  std::vector<const char*> envp;
  if (!kill_spec.empty()) envp.push_back(kill_env.c_str());
  envp.push_back(nullptr);
  execve(self, const_cast<char* const*>(argv),
         const_cast<char* const*>(envp.data()));
  _exit(127);  // execve failed
}

// Waits for `pid` up to `timeout_ms`; if the armed site never fired
// (or none was armed), delivers the SIGKILL from outside. Returns true if
// the worker died by SIGKILL or ran into the timeout kill; a clean exit
// means the worker hit an error before the kill — round fails.
bool ReapWorker(pid_t pid, int timeout_ms, bool* killed_by_timeout) {
  const int64_t deadline = NowMs() + timeout_ms;
  int status = 0;
  *killed_by_timeout = false;
  for (;;) {
    pid_t r = waitpid(pid, &status, WNOHANG);
    if (r == pid) break;
    if (r < 0) return false;
    if (NowMs() >= deadline) {
      kill(pid, SIGKILL);
      *killed_by_timeout = true;
      waitpid(pid, &status, 0);
      break;
    }
    usleep(2000);
  }
  return WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
}

int RunSupervisor(const char* self, const TortureOptions& opts) {
  std::string dir = opts.dir;
  if (dir.empty()) {
    char tmpl[] = "/tmp/sudaf_torture_XXXXXX";
    const char* made = mkdtemp(tmpl);
    if (made == nullptr) {
      std::perror("mkdtemp");
      return 1;
    }
    dir = made;
  }
  std::string store = dir + "/store";

  // Reference answers from a cold, persistence-free session: the ground
  // truth every post-crash recovery must reproduce bit-for-bit. The
  // supervisor's table carries the first kSupervisorAppends deltas, so
  // recovered worker sets probe against a segment log of
  // {4000, 4400, 4800}: covered 4000/4400 refreshes, 4800 hits exactly,
  // anything larger is discarded.
  Catalog catalog;
  SetupCatalog(&catalog);
  for (int i = 0; i < kSupervisorAppends; ++i) {
    Status ap = catalog.AppendRows("milan_data", *MakeDelta(i));
    if (!ap.ok()) {
      std::fprintf(stderr, "supervisor append failed: %s\n",
                   ap.ToString().c_str());
      return 1;
    }
  }
  std::vector<uint32_t> expected;
  {
    SudafSession cold(&catalog);
    Status st = SetupSession(&cold);
    if (!st.ok()) {
      std::fprintf(stderr, "cold setup failed: %s\n", st.ToString().c_str());
      return 1;
    }
    Result<std::vector<uint32_t>> prints = RunAndFingerprint(&cold);
    if (!prints.ok()) {
      std::fprintf(stderr, "cold run failed: %s\n",
                   prints.status().ToString().c_str());
      return 1;
    }
    expected = *prints;
  }

  Rng rng(opts.seed);
  int failures = 0;
  for (int round = 0; round < opts.rounds; ++round) {
    // Two kill styles alternate through the randomness: an armed in-process
    // SIGKILL at a precise persistence site (with a random skip count, so
    // the Nth crossing dies, not always the first), or a pure timed kill
    // that can land anywhere — including mid-write.
    std::string spec;
    const bool timed_only = rng.NextBelow(4) == 0;
    if (!timed_only) {
      const char* site =
          kKillSites[rng.NextBelow(sizeof(kKillSites) / sizeof(*kKillSites))];
      int skip = static_cast<int>(rng.NextBelow(24));
      spec = std::string(site) + "=skip:" + std::to_string(skip);
    }

    pid_t pid = SpawnWorker(self, store, opts.seed + 1000 + round, spec);
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (timed_only) {
      // Let the worker get somewhere unpredictable first.
      usleep(static_cast<useconds_t>(5000 + rng.NextBelow(60) * 1000));
      kill(pid, SIGKILL);
    }
    bool timeout_kill = false;
    if (!ReapWorker(pid, opts.timeout_ms, &timeout_kill)) {
      std::fprintf(stderr,
                   "round %d FAILED: worker exited instead of dying "
                   "(site %s)\n",
                   round, spec.empty() ? "<timed>" : spec.c_str());
      ++failures;
      continue;
    }

    // Recovery: attaching the mangled store must succeed, and the fixed
    // queries must answer bit-identically to the cold reference.
    SudafSession session(&catalog);
    Status st = SetupSession(&session);
    if (st.ok()) st = session.EnableCachePersistence(store);
    if (!st.ok()) {
      std::fprintf(stderr, "round %d FAILED: recovery: %s\n", round,
                   st.ToString().c_str());
      ++failures;
      continue;
    }
    const CacheRecoveryStats& rec =
        session.cache_persistence()->recovery_stats();
    Result<std::vector<uint32_t>> prints = RunAndFingerprint(&session);
    if (!prints.ok()) {
      std::fprintf(stderr, "round %d FAILED: post-recovery query: %s\n",
                   round, prints.status().ToString().c_str());
      ++failures;
      continue;
    }
    bool match = *prints == expected;
    std::printf(
        "round %2d %s  kill=%-28s recovered %lld sets/%lld entries "
        "(dropped: %lld torn, %lld checksum)%s\n",
        round, match ? "ok    " : "FAILED",
        spec.empty() ? (timeout_kill ? "<timed+timeout>" : "<timed>")
                     : spec.c_str(),
        static_cast<long long>(rec.sets_recovered),
        static_cast<long long>(rec.entries_recovered),
        static_cast<long long>(rec.records_dropped_torn),
        static_cast<long long>(rec.records_dropped_checksum),
        match ? "" : "  ANSWER MISMATCH");
    if (!match) ++failures;
  }

  if (failures == 0) {
    std::printf("torture: all %d rounds recovered bit-identically\n",
                opts.rounds);
    return 0;
  }
  std::fprintf(stderr, "torture: %d/%d rounds FAILED\n", failures,
               opts.rounds);
  return 1;
}

}  // namespace
}  // namespace sudaf

int main(int argc, char** argv) {
  using sudaf::TortureOptions;
  if (argc >= 4 && std::strcmp(argv[1], "--worker") == 0) {
    return sudaf::RunWorker(argv[2],
                            std::strtoull(argv[3], nullptr, 10));
  }
  TortureOptions opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--rounds") {
      opts.rounds = std::atoi(next());
    } else if (arg == "--seed") {
      opts.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--dir") {
      opts.dir = next();
    } else if (arg == "--timeout-ms") {
      opts.timeout_ms = std::atoi(next());
    } else {
      std::fprintf(stderr,
                   "usage: %s [--rounds N] [--seed S] [--dir D] "
                   "[--timeout-ms T]\n",
                   argv[0]);
      return 1;
    }
  }
  return sudaf::RunSupervisor(argv[0], opts);
}

#!/usr/bin/env bash
# Build + test under a sanitizer configuration. The new threaded execution
# paths (thread pool, fused StateBatch, query service) should be validated
# with
#
#   tools/check.sh tsan              # race-check the threaded paths
#   tools/check.sh asan              # memory/UB check
#   tools/check.sh release           # plain optimized build (default)
#   tools/check.sh tsan --stress     # + the chaos stress shard: repeat the
#                                    # service chaos harness (concurrent
#                                    # clients under cycling failpoints)
#                                    # several times under the sanitizer
#   tools/check.sh release --torture # + kill-and-recover torture: SIGKILL a
#                                    # worker process at randomized
#                                    # persistence sites, verify recovery is
#                                    # bit-identical (TORTURE_ROUNDS, def 20)
#
# Requires cmake >= 3.23 (presets). Runs from anywhere inside the repo.
set -euo pipefail

preset="${1:-release}"
stress=0
torture=0
case "$preset" in
  release|asan|tsan) ;;
  *) echo "usage: $0 [release|asan|tsan] [--stress|--torture]" >&2; exit 2 ;;
esac
if [ "${2:-}" = "--stress" ]; then
  stress=1
elif [ "${2:-}" = "--torture" ]; then
  torture=1
elif [ -n "${2:-}" ]; then
  echo "usage: $0 [release|asan|tsan] [--stress|--torture]" >&2; exit 2
fi

cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc)"
ctest --preset "$preset" -j "$(nproc)"

build_dir="build-${preset}"
[ "$preset" = release ] && build_dir="build"

if [ "$preset" = tsan ]; then
  # Explicit race gate for the parallel pipeline: re-run the thread-count
  # determinism suite with many repetitions so dynamic chunk claiming and
  # the per-worker observability buffers get repeatedly exercised under
  # ThreadSanitizer (ctest above runs each test once).
  "${build_dir}/tests/sudaf_tests" \
    --gtest_filter='ParallelPipelineTest.*' --gtest_repeat=3
fi

if [ "$torture" = 1 ]; then
  # Real process death: the torture supervisor fork/execs a worker, kills
  # it with SIGKILL at a randomized persistence site (or a randomized
  # wall-clock moment), then recovers the store in-process and checks every
  # answer bit-for-bit against a cold run (docs/robustness.md).
  "${build_dir}/tools/torture" --rounds "${TORTURE_ROUNDS:-20}"
fi

if [ "$stress" = 1 ]; then
  # Chaos stress shard: concurrent service clients with a chaos thread
  # cycling failpoint configurations, plus the admission/session
  # concurrency suites, repeated so rare interleavings get a chance to
  # surface under the sanitizer.
  "${build_dir}/tests/sudaf_tests" \
    --gtest_filter='ChaosTest.*:AdmissionTest.*:ServiceTest.*:ThreadPoolReentrancyTest.*' \
    --gtest_repeat=3 --gtest_shuffle
fi

#!/usr/bin/env bash
# Build + test under a sanitizer configuration. The new threaded execution
# paths (thread pool, fused StateBatch) should be validated with
#
#   tools/check.sh tsan     # race-check the thread pool / morsel pipeline
#   tools/check.sh asan     # memory/UB check
#   tools/check.sh release  # plain optimized build (default)
#
# Requires cmake >= 3.23 (presets). Runs from anywhere inside the repo.
set -euo pipefail

preset="${1:-release}"
case "$preset" in
  release|asan|tsan) ;;
  *) echo "usage: $0 [release|asan|tsan]" >&2; exit 2 ;;
esac

cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc)"
ctest --preset "$preset" -j "$(nproc)"

if [ "$preset" = tsan ]; then
  # Explicit race gate for the parallel pipeline: re-run the thread-count
  # determinism suite with many repetitions so dynamic chunk claiming and
  # the per-worker observability buffers get repeatedly exercised under
  # ThreadSanitizer (ctest above runs each test once).
  build_dir="build-tsan"
  "${build_dir}/tests/sudaf_tests" \
    --gtest_filter='ParallelPipelineTest.*' --gtest_repeat=3
fi
